// Mini-batch prefetching (§3.3, §4.0.2).
//
// DistTGL hides mini-batch generation behind GPU compute by preparing
// batches ahead of time on a separate thread (the paper prefetches the
// pre-sampled static information j iterations in advance on a dedicated
// CUDA stream). Here a worker thread runs the pure MiniBatchBuilder over
// a fixed request list and feeds a bounded queue; trainers pop in order.
// Bounding the queue to `ahead` keeps memory proportional to the
// pipeline depth, matching the paper's j-ahead scheme.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sampling/minibatch.hpp"

namespace disttgl {

class Prefetcher {
 public:
  struct Request {
    std::size_t batch_idx = 0;
    std::size_t begin = 0, end = 0;
    std::vector<std::size_t> neg_groups;  // one per epoch-parallel variant
  };

  // Starts prefetching immediately. `ahead` is the queue bound (≥ 1).
  Prefetcher(const MiniBatchBuilder& builder, std::vector<Request> requests,
             std::size_t ahead);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  // Pops the next mini-batch in request order; blocks until available.
  // Returns nullopt when the request list is exhausted.
  std::optional<MiniBatch> next();

  std::size_t total_requests() const { return requests_.size(); }

 private:
  void worker_loop();

  const MiniBatchBuilder& builder_;
  std::vector<Request> requests_;
  std::size_t ahead_;

  std::mutex mu_;
  std::condition_variable cv_producer_, cv_consumer_;
  std::deque<MiniBatch> ready_;
  std::size_t produced_ = 0;
  std::size_t consumed_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace disttgl
