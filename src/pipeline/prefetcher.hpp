// Mini-batch prefetching (§3.3, §4.0.2).
//
// DistTGL hides mini-batch generation behind GPU compute by preparing
// batches ahead of time (the paper prefetches the pre-sampled static
// information j iterations in advance on a dedicated CUDA stream). Here
// each request becomes a construction job on a worker pool; jobs build
// into recycled MiniBatchPool buffers and finish in any order, while
// next() delivers strictly in request order from an `ahead`-sized ring.
// At most `ahead` requests are in flight past the consumer, keeping
// memory proportional to the pipeline depth, matching the paper's
// j-ahead scheme.
//
// Two modes, chosen by the constructor arguments:
//  - pooled (the default system path): pass a shared ThreadPool — many
//    prefetchers can feed from the same workers — and a MiniBatchPool
//    whose buffers cycle trainer → pool → next build.
//  - legacy (pre-pipeline behaviour, kept for the before/after bench):
//    pass neither; the prefetcher owns a single worker thread and every
//    batch is a fresh heap allocation.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "sampling/minibatch_pool.hpp"

namespace disttgl {

class Prefetcher {
 public:
  struct Request {
    std::size_t batch_idx = 0;
    std::size_t begin = 0, end = 0;
    std::vector<std::size_t> neg_groups;  // one per epoch-parallel variant
  };

  // Starts prefetching immediately. `ahead` bounds the requests in
  // flight past the consumer (≥ 1). Null `workers` → an owned
  // single-thread pool; null `batch_pool` → a fresh allocation per
  // batch. Externally supplied pools must outlive the prefetcher and
  // (for `batch_pool`) every handle returned by next().
  Prefetcher(const MiniBatchBuilder& builder, std::vector<Request> requests,
             std::size_t ahead, ThreadPool* workers = nullptr,
             MiniBatchPool* batch_pool = nullptr);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  // Pops the next mini-batch in request order; blocks until available.
  // Returns an empty handle when the request list is exhausted.
  // Rethrows the first exception any construction job hit — and keeps
  // rethrowing it on every later call (the stream is poisoned).
  PooledBatch next();

  std::size_t total_requests() const { return requests_.size(); }

  // Cumulative wall time spent inside build_into across all jobs — the
  // batch-generation cost the pipeline is hiding (bench attribution).
  double build_seconds() const;

 private:
  void schedule_locked();           // keep `ahead` requests in flight
  void build_one(std::size_t r);    // runs on a worker

  const MiniBatchBuilder& builder_;
  std::vector<Request> requests_;
  std::size_t ahead_;
  std::unique_ptr<ThreadPool> owned_workers_;  // legacy single worker
  ThreadPool* workers_;
  MiniBatchPool* batch_pool_;  // null = allocate per batch (legacy)

  mutable std::mutex mu_;
  std::condition_variable cv_ready_;  // consumer + destructor wakeups
  std::vector<PooledBatch> ring_;     // request r parks at r % ahead
  std::vector<std::uint8_t> ring_full_;
  std::size_t consumed_ = 0;
  std::size_t scheduled_ = 0;
  std::size_t in_flight_ = 0;  // scheduled jobs not yet finished
  bool stop_ = false;
  double build_seconds_ = 0.0;
  std::exception_ptr error_;  // first job failure, rethrown by next()
};

}  // namespace disttgl
