#include "graph/temporal_graph.hpp"

#include <algorithm>

namespace disttgl {

TemporalGraph TemporalGraph::from_events(std::string name, std::size_t num_nodes,
                                         std::vector<TemporalEdge> events,
                                         std::size_t num_src_partition) {
  TemporalGraph g;
  g.name_ = std::move(name);
  g.num_nodes_ = num_nodes;
  g.num_src_ = num_src_partition;
  DT_CHECK_LE(num_src_partition, num_nodes);

  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].id = static_cast<EdgeId>(i);
    DT_CHECK_LT(events[i].src, num_nodes);
    DT_CHECK_LT(events[i].dst, num_nodes);
    if (i > 0) DT_CHECK_GE(events[i].ts, events[i - 1].ts);
  }
  g.events_ = std::move(events);

  // Build the per-node CSR by counting then filling. Events are already
  // time-sorted, so a stable fill keeps each node's list time-sorted.
  std::vector<std::size_t> count(num_nodes, 0);
  for (const TemporalEdge& e : g.events_) {
    ++count[e.src];
    if (e.dst != e.src) ++count[e.dst];
  }
  g.adj_off_.assign(num_nodes + 1, 0);
  for (std::size_t v = 0; v < num_nodes; ++v)
    g.adj_off_[v + 1] = g.adj_off_[v] + count[v];
  g.adj_.resize(g.adj_off_.back());
  std::vector<std::size_t> cursor(g.adj_off_.begin(), g.adj_off_.end() - 1);
  for (const TemporalEdge& e : g.events_) {
    g.adj_[cursor[e.src]++] = e.id;
    if (e.dst != e.src) g.adj_[cursor[e.dst]++] = e.id;
  }
  return g;
}

std::span<const EdgeId> TemporalGraph::incident(NodeId v) const {
  DT_CHECK_LT(v, num_nodes_);
  return {adj_.data() + adj_off_[v], adj_off_[v + 1] - adj_off_[v]};
}

std::size_t TemporalGraph::events_before(NodeId v, float t) const {
  auto inc = incident(v);
  // Event ids are assigned in time order, so the incident list is sorted
  // by (ts, id); binary search on ts via the event table.
  auto it = std::partition_point(inc.begin(), inc.end(), [&](EdgeId id) {
    return events_[id].ts < t;
  });
  return static_cast<std::size_t>(it - inc.begin());
}

void TemporalGraph::set_edge_features(Matrix f) {
  DT_CHECK_EQ(f.rows(), events_.size());
  edge_feat_ = std::move(f);
}

void TemporalGraph::set_node_features(Matrix f) {
  DT_CHECK_EQ(f.rows(), num_nodes_);
  node_feat_ = std::move(f);
}

void TemporalGraph::set_edge_labels(Matrix labels) {
  DT_CHECK_EQ(labels.rows(), events_.size());
  edge_labels_ = std::move(labels);
}

}  // namespace disttgl
