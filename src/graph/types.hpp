// Shared identifier types for the temporal graph stack.
#pragma once

#include <cstdint>

namespace disttgl {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

}  // namespace disttgl
