// Continuous-time dynamic graph (CTDG) storage.
//
// A dynamic graph is a time-ordered stream of edge events
// {(u, v, e_uv, t)} (§2.1). TemporalGraph stores the stream plus a
// per-node, time-sorted incidence index (CSR over event ids) so the
// most-recent-K neighbor sampler can binary-search "events touching v
// strictly before t" in O(log deg). Node/edge features are dense
// matrices; graphs without features carry empty matrices.
//
// Bipartite interaction graphs (Wikipedia/Reddit/MOOC-style user→item)
// mark a partition point: nodes [0, num_src) are sources, the rest
// destinations. Negative sampling uses this to draw only from the
// destination partition, as the paper does.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "tensor/matrix.hpp"

namespace disttgl {

struct TemporalEdge {
  NodeId src = 0;
  NodeId dst = 0;
  float ts = 0.0f;
  EdgeId id = 0;
};

class TemporalGraph {
 public:
  TemporalGraph() = default;

  // Events must be supplied in non-decreasing timestamp order; ids are
  // assigned by position.
  static TemporalGraph from_events(std::string name, std::size_t num_nodes,
                                   std::vector<TemporalEdge> events,
                                   std::size_t num_src_partition = 0);

  const std::string& name() const { return name_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_events() const { return events_.size(); }
  bool bipartite() const { return num_src_ > 0; }
  // First destination-partition node id (== num_src for bipartite graphs).
  NodeId dst_partition_begin() const { return static_cast<NodeId>(num_src_); }

  const TemporalEdge& event(EdgeId id) const {
    DT_CHECK_LT(id, events_.size());
    return events_[id];
  }
  std::span<const TemporalEdge> events() const { return events_; }
  float max_timestamp() const {
    return events_.empty() ? 0.0f : events_.back().ts;
  }

  // Event ids incident to `v` (as src or dst), sorted by timestamp.
  std::span<const EdgeId> incident(NodeId v) const;
  // Number of incident events of `v` strictly before time `t`.
  std::size_t events_before(NodeId v, float t) const;
  // Degree (total incident events) of `v`.
  std::size_t degree(NodeId v) const { return incident(v).size(); }

  // ---- features ----
  bool has_edge_features() const { return edge_feat_.rows() > 0; }
  bool has_node_features() const { return node_feat_.rows() > 0; }
  std::size_t edge_feat_dim() const { return edge_feat_.cols(); }
  std::size_t node_feat_dim() const { return node_feat_.cols(); }
  const Matrix& edge_features() const { return edge_feat_; }
  const Matrix& node_features() const { return node_feat_; }
  void set_edge_features(Matrix f);
  void set_node_features(Matrix f);

  // ---- edge labels (multi-label classification tasks) ----
  bool has_edge_labels() const { return edge_labels_.rows() > 0; }
  const Matrix& edge_labels() const { return edge_labels_; }
  std::size_t num_classes() const { return edge_labels_.cols(); }
  void set_edge_labels(Matrix labels);

 private:
  std::string name_;
  std::size_t num_nodes_ = 0;
  std::size_t num_src_ = 0;  // 0 = unipartite
  std::vector<TemporalEdge> events_;
  // CSR: incident event ids per node, time-sorted.
  std::vector<EdgeId> adj_;
  std::vector<std::size_t> adj_off_;
  Matrix edge_feat_;
  Matrix node_feat_;
  Matrix edge_labels_;
};

}  // namespace disttgl
