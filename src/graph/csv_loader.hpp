// CSV event-stream loading — the Jodie/TGN dataset format.
//
// The paper's datasets (Wikipedia, Reddit, MOOC…) ship as CSVs of
//   src,dst,timestamp[,label][,f0,f1,…]
// rows sorted by timestamp. This loader turns such a file into a
// TemporalGraph so the library runs on real data when it is available
// (the bench suite uses the synthetic presets only because this
// environment has no network access).
#pragma once

#include <istream>
#include <string>

#include "graph/temporal_graph.hpp"

namespace disttgl {

struct CsvLoadOptions {
  bool has_header = true;
  // Number of leading columns after src,dst,ts to skip (e.g. Jodie's
  // state-change label column).
  std::size_t skip_columns = 0;
  // Remaining columns become edge features (0 = ignore extra columns;
  // SIZE_MAX = use all remaining).
  std::size_t edge_feature_dims = static_cast<std::size_t>(-1);
  // Jodie bipartite CSVs index users and items independently from 0;
  // when true, destination ids are offset by (max src id + 1) and the
  // result is marked bipartite.
  bool bipartite_reindex = false;
};

// Parses the stream; throws std::logic_error with a line number on
// malformed input (non-numeric fields, decreasing timestamps,
// inconsistent column counts).
TemporalGraph load_temporal_csv(std::istream& in, std::string name,
                                const CsvLoadOptions& opts = CsvLoadOptions());

// Convenience file wrapper.
TemporalGraph load_temporal_csv_file(const std::string& path, std::string name,
                                     const CsvLoadOptions& opts = CsvLoadOptions());

}  // namespace disttgl
