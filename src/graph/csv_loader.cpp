#include "graph/csv_loader.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace disttgl {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  return out;
}

double parse_number(const std::string& s, std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    DT_CHECK_MSG(pos == s.size(), "trailing characters in field");
    return v;
  } catch (const std::exception&) {
    throw std::logic_error("csv line " + std::to_string(line_no) +
                           ": malformed numeric field '" + s + "'");
  }
}

}  // namespace

TemporalGraph load_temporal_csv(std::istream& in, std::string name,
                                const CsvLoadOptions& opts) {
  std::string line;
  std::size_t line_no = 0;
  if (opts.has_header && std::getline(in, line)) ++line_no;

  struct RawEvent {
    std::uint64_t src, dst;
    float ts;
  };
  std::vector<RawEvent> raw;
  std::vector<std::vector<float>> features;
  std::size_t feat_dims = static_cast<std::size_t>(-1);
  float prev_ts = -std::numeric_limits<float>::infinity();

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    DT_CHECK_MSG(fields.size() >= 3 + opts.skip_columns,
                 "csv line " << line_no << ": expected at least "
                             << 3 + opts.skip_columns << " columns, got "
                             << fields.size());
    RawEvent e;
    e.src = static_cast<std::uint64_t>(parse_number(fields[0], line_no));
    e.dst = static_cast<std::uint64_t>(parse_number(fields[1], line_no));
    e.ts = static_cast<float>(parse_number(fields[2], line_no));
    DT_CHECK_MSG(e.ts >= prev_ts,
                 "csv line " << line_no << ": timestamps must be sorted");
    prev_ts = e.ts;

    const std::size_t feat_begin = 3 + opts.skip_columns;
    std::size_t avail = fields.size() - feat_begin;
    avail = std::min(avail, opts.edge_feature_dims);
    if (feat_dims == static_cast<std::size_t>(-1)) feat_dims = avail;
    DT_CHECK_MSG(avail == feat_dims, "csv line " << line_no
                                                 << ": inconsistent feature "
                                                    "column count");
    if (feat_dims > 0) {
      std::vector<float> f(feat_dims);
      for (std::size_t c = 0; c < feat_dims; ++c)
        f[c] = static_cast<float>(parse_number(fields[feat_begin + c], line_no));
      features.push_back(std::move(f));
    }
    raw.push_back(e);
  }
  DT_CHECK_MSG(!raw.empty(), "csv contained no events");

  // Establish the id space.
  std::uint64_t max_src = 0, max_dst = 0;
  for (const RawEvent& e : raw) {
    max_src = std::max(max_src, e.src);
    max_dst = std::max(max_dst, e.dst);
  }
  std::size_t num_nodes;
  std::size_t src_partition = 0;
  std::uint64_t dst_offset = 0;
  if (opts.bipartite_reindex) {
    dst_offset = max_src + 1;
    src_partition = static_cast<std::size_t>(dst_offset);
    num_nodes = static_cast<std::size_t>(dst_offset + max_dst + 1);
  } else {
    num_nodes = static_cast<std::size_t>(std::max(max_src, max_dst) + 1);
  }

  std::vector<TemporalEdge> events;
  events.reserve(raw.size());
  for (const RawEvent& e : raw) {
    TemporalEdge te;
    te.src = static_cast<NodeId>(e.src);
    te.dst = static_cast<NodeId>(e.dst + dst_offset);
    te.ts = e.ts;
    events.push_back(te);
  }
  TemporalGraph g = TemporalGraph::from_events(std::move(name), num_nodes,
                                               std::move(events), src_partition);
  if (feat_dims > 0 && feat_dims != static_cast<std::size_t>(-1)) {
    Matrix ef(raw.size(), feat_dims);
    for (std::size_t r = 0; r < features.size(); ++r)
      ef.copy_row_from(r, features[r]);
    g.set_edge_features(std::move(ef));
  }
  return g;
}

TemporalGraph load_temporal_csv_file(const std::string& path, std::string name,
                                     const CsvLoadOptions& opts) {
  std::ifstream in(path);
  DT_CHECK_MSG(in.good(), "cannot open csv file: " << path);
  return load_temporal_csv(in, std::move(name), opts);
}

}  // namespace disttgl
