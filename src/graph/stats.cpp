#include "graph/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace disttgl {

DatasetStats compute_stats(const TemporalGraph& g) {
  DatasetStats s;
  s.name = g.name();
  s.num_nodes = g.num_nodes();
  s.num_events = g.num_events();
  s.max_timestamp = g.max_timestamp();
  s.node_feat_dim = g.node_feat_dim();
  s.edge_feat_dim = g.edge_feat_dim();
  s.bipartite = g.bipartite();

  std::vector<std::size_t> degrees(g.num_nodes());
  std::size_t total_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degrees[v] = g.degree(v);
    total_deg += degrees[v];
    s.max_degree = std::max(s.max_degree, degrees[v]);
  }
  s.mean_degree =
      g.num_nodes() ? static_cast<double>(total_deg) / g.num_nodes() : 0.0;

  // Repeat-edge fraction.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(g.num_events() * 2);
  std::size_t repeats = 0;
  for (const TemporalEdge& e : g.events()) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
    if (!seen.insert(key).second) ++repeats;
  }
  s.repeat_edge_fraction =
      g.num_events() ? static_cast<double>(repeats) / g.num_events() : 0.0;

  // Gini over sorted degrees.
  std::sort(degrees.begin(), degrees.end());
  if (total_deg > 0 && !degrees.empty()) {
    double weighted = 0.0;
    for (std::size_t i = 0; i < degrees.size(); ++i)
      weighted += (2.0 * static_cast<double>(i + 1) -
                   static_cast<double>(degrees.size()) - 1.0) *
                  static_cast<double>(degrees[i]);
    s.degree_gini = weighted / (static_cast<double>(degrees.size()) *
                                static_cast<double>(total_deg));
  }
  return s;
}

std::string stats_header() {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-14s %9s %10s %12s %5s %5s %5s %8s %8s %7s",
                "dataset", "|V|", "|E|", "max(t)", "|dv|", "|de|", "bip",
                "mean_dg", "rep_frac", "gini");
  return buf;
}

std::string format_stats_row(const DatasetStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-14s %9zu %10zu %12.3e %5zu %5zu %5s %8.1f %8.3f %7.3f",
                s.name.c_str(), s.num_nodes, s.num_events,
                static_cast<double>(s.max_timestamp), s.node_feat_dim,
                s.edge_feat_dim, s.bipartite ? "yes" : "no", s.mean_degree,
                s.repeat_edge_fraction, s.degree_gini);
  return buf;
}

}  // namespace disttgl
