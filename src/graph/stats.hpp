// Dataset statistics — reproduces the columns of Table 2 plus the
// degree/recurrence measures the generator presets are tuned against.
#pragma once

#include <string>
#include <vector>

#include "graph/temporal_graph.hpp"

namespace disttgl {

struct DatasetStats {
  std::string name;
  std::size_t num_nodes = 0;
  std::size_t num_events = 0;
  float max_timestamp = 0.0f;
  std::size_t node_feat_dim = 0;
  std::size_t edge_feat_dim = 0;
  bool bipartite = false;
  double mean_degree = 0.0;
  std::size_t max_degree = 0;
  // Fraction of events whose (src, dst) pair already appeared earlier —
  // the "recurrence" knob that drives memory-staleness effects.
  double repeat_edge_fraction = 0.0;
  // Gini coefficient of the degree distribution (0 = uniform, →1 = skewed).
  double degree_gini = 0.0;
};

DatasetStats compute_stats(const TemporalGraph& g);

// Formats one row of the Table 2-style report.
std::string format_stats_row(const DatasetStats& s);
// Header matching format_stats_row.
std::string stats_header();

}  // namespace disttgl
