// Seeded, stream-splittable random number generation.
//
// All stochastic components of DistTGL (data generation, negative
// sampling, weight init, schedule jitter) draw from Rng instances so that
// every experiment is reproducible from a single 64-bit seed. Rng is a
// SplitMix64 core: tiny state, excellent statistical quality for
// simulation workloads, and `split()` derives independent child streams
// so parallel trainers never contend on a shared generator.
#pragma once

#include <cstdint>
#include <vector>

namespace disttgl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  // Next raw 64-bit value (SplitMix64).
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  // Standard normal via Box-Muller (no cached spare: stateless per call
  // pair keeps replay deterministic regardless of interleaving).
  double normal();
  double normal(double mean, double stddev);
  // Exponential with the given rate.
  double exponential(double rate);
  // Zipf-like power-law index in [0, n): P(i) proportional to (i+1)^-alpha.
  // Used for skewed node-activity distributions in the data generator.
  std::uint64_t powerlaw_int(std::uint64_t n, double alpha);
  // Bernoulli trial.
  bool bernoulli(double p);
  // Sample an index from unnormalized non-negative weights.
  std::size_t categorical(const std::vector<float>& weights);

  // Derive an independent child stream. Children of distinct calls are
  // decorrelated even if the parent continues to be used.
  Rng split();

 private:
  std::uint64_t state_;
};

}  // namespace disttgl
