#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace disttgl {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  double t = std::chrono::duration<double>(clock::now() - start).count();
  std::string line;
  line.reserve(msg.size() + 32);
  line += '[';
  line += std::to_string(t);
  line += "s ";
  line += level_tag(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace disttgl
