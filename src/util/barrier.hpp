// Sense-reversing barrier for trainer-thread synchronization.
//
// The threaded orchestrator synchronizes a handful of trainer threads per
// iteration (gradient allreduce, schedule phase boundaries). A
// sense-reversing barrier avoids the two-phase latch dance of
// std::barrier while staying trivially correct: each arrival flips a
// thread-local sense and the last arrival releases the epoch.
//
// Waiting follows the shared bounded-spin → park policy (util/wait.hpp):
// a thread whose peers are one step away resolves in the spin stage; one
// descheduled for a while parks on the barrier word instead of burning a
// core. The spin budget comes from WaitPolicy so the fabric benches can
// sweep it and spin_polls = 0 (pure park) is a tested configuration.
//
// The barrier is poisonable: a failing trainer calls poison() and every
// current and future arrival returns false instead of waiting for peers
// that will never come (the recovery subsystem's in-process analogue of
// ProcComm::abort_session). The barrier word packs the epoch sense in
// bit 0 and the poison flag in bit 1, so parked waiters wake on either
// transition via the same futex.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/wait.hpp"

namespace disttgl {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties, WaitPolicy policy = {})
      : parties_(parties), policy_(policy), remaining_(parties), word_(0) {}

  // Blocks until all `parties` threads have arrived or the barrier is
  // poisoned; returns false in the poisoned case. Safe for repeated use;
  // threads must each pass their own `local_sense` initialized to false
  // (see BarrierToken).
  bool arrive_and_wait(bool& local_sense) {
    local_sense = !local_sense;
    const int want = local_sense ? 1 : 0;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      const int prev = word_.fetch_xor(1, std::memory_order_acq_rel);
      word_.notify_all();
      return (prev & 2) == 0;
    }
    for (std::uint32_t p = 0; p < policy_.spin_polls; ++p) {
      const int cur = word_.load(std::memory_order_acquire);
      if (cur & 2) return false;
      if ((cur & 1) == want) return true;
      if ((p & 0x3f) == 0x3f) std::this_thread::yield();
    }
    for (;;) {
      const int cur = word_.load(std::memory_order_acquire);
      if (cur & 2) return false;
      if ((cur & 1) == want) return true;
      word_.wait(cur, std::memory_order_acquire);
    }
  }

  // Marks the barrier failed and wakes every parked waiter. Idempotent;
  // callable from any thread (including one not participating).
  void poison() {
    word_.fetch_or(2, std::memory_order_acq_rel);
    word_.notify_all();
  }

  bool poisoned() const {
    return (word_.load(std::memory_order_acquire) & 2) != 0;
  }

  std::size_t parties() const { return parties_; }

 private:
  const std::size_t parties_;
  const WaitPolicy policy_;
  std::atomic<std::size_t> remaining_;
  // Bit 0: epoch sense. Bit 1: poison.
  std::atomic<int> word_;
};

// Per-thread barrier handle bundling the thread-local sense bit.
class BarrierToken {
 public:
  explicit BarrierToken(SpinBarrier& barrier) : barrier_(barrier) {}
  [[nodiscard]] bool wait() { return barrier_.arrive_and_wait(sense_); }

 private:
  SpinBarrier& barrier_;
  bool sense_ = false;
};

}  // namespace disttgl
