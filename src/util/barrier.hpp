// Sense-reversing spin barrier for trainer-thread synchronization.
//
// The threaded orchestrator synchronizes a handful of trainer threads per
// iteration (gradient allreduce, schedule phase boundaries). A
// sense-reversing barrier avoids the two-phase latch dance of
// std::barrier while staying trivially correct: each arrival flips a
// thread-local sense and the last arrival releases the epoch.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

namespace disttgl {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties)
      : parties_(parties), remaining_(parties), sense_(false) {}

  // Blocks until all `parties` threads have arrived. Safe for repeated
  // use; threads must each pass their own `local_sense` initialized to
  // false (see BarrierToken).
  void arrive_and_wait(bool& local_sense) {
    local_sense = !local_sense;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(local_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != local_sense) {
        std::this_thread::yield();
      }
    }
  }

  std::size_t parties() const { return parties_; }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_;
};

// Per-thread barrier handle bundling the thread-local sense bit.
class BarrierToken {
 public:
  explicit BarrierToken(SpinBarrier& barrier) : barrier_(barrier) {}
  void wait() { barrier_.arrive_and_wait(sense_); }

 private:
  SpinBarrier& barrier_;
  bool sense_ = false;
};

}  // namespace disttgl
