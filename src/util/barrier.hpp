// Sense-reversing barrier for trainer-thread synchronization.
//
// The threaded orchestrator synchronizes a handful of trainer threads per
// iteration (gradient allreduce, schedule phase boundaries). A
// sense-reversing barrier avoids the two-phase latch dance of
// std::barrier while staying trivially correct: each arrival flips a
// thread-local sense and the last arrival releases the epoch.
//
// Waiting follows the shared bounded-spin → park policy (util/wait.hpp):
// a thread whose peers are one step away resolves in the spin stage; one
// descheduled for a while parks on the sense word instead of burning a
// core. The spin budget comes from WaitPolicy so the fabric benches can
// sweep it and spin_polls = 0 (pure park) is a tested configuration.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/wait.hpp"

namespace disttgl {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties, WaitPolicy policy = {})
      : parties_(parties), policy_(policy), remaining_(parties), sense_(false) {}

  // Blocks until all `parties` threads have arrived. Safe for repeated
  // use; threads must each pass their own `local_sense` initialized to
  // false (see BarrierToken).
  void arrive_and_wait(bool& local_sense) {
    local_sense = !local_sense;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(local_sense, std::memory_order_release);
      sense_.notify_all();
    } else {
      for (std::uint32_t p = 0; p < policy_.spin_polls; ++p) {
        if (sense_.load(std::memory_order_acquire) == local_sense) return;
        if ((p & 0x3f) == 0x3f) std::this_thread::yield();
      }
      while (sense_.load(std::memory_order_acquire) != local_sense)
        sense_.wait(!local_sense, std::memory_order_acquire);
    }
  }

  std::size_t parties() const { return parties_; }

 private:
  const std::size_t parties_;
  const WaitPolicy policy_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_;
};

// Per-thread barrier handle bundling the thread-local sense bit.
class BarrierToken {
 public:
  explicit BarrierToken(SpinBarrier& barrier) : barrier_(barrier) {}
  void wait() { barrier_.arrive_and_wait(sense_); }

 private:
  SpinBarrier& barrier_;
  bool sense_ = false;
};

}  // namespace disttgl
