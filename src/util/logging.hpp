// Minimal leveled logger.
//
// DistTGL components log through this sink so benches can silence
// per-iteration chatter while tests keep warnings visible. Thread-safe:
// each message is formatted into a local buffer and written with a single
// fwrite.
#pragma once

#include <sstream>
#include <string>

namespace disttgl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream os;
  explicit LogLine(LogLevel l) : level(l) {}
  ~LogLine() { log_message(level, os.str()); }
};
}  // namespace detail

}  // namespace disttgl

#define DT_LOG(level_enum)                                      \
  if (static_cast<int>(level_enum) <                            \
      static_cast<int>(::disttgl::log_level())) {               \
  } else                                                        \
    ::disttgl::detail::LogLine(level_enum).os

#define DT_DEBUG DT_LOG(::disttgl::LogLevel::kDebug)
#define DT_INFO DT_LOG(::disttgl::LogLevel::kInfo)
#define DT_WARN DT_LOG(::disttgl::LogLevel::kWarn)
#define DT_ERROR DT_LOG(::disttgl::LogLevel::kError)
