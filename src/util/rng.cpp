#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace disttgl {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  DT_CHECK_GT(n, 0u);
  // Rejection-free multiply-shift; bias is negligible for n << 2^64.
  return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
}

double Rng::normal() {
  double u1 = uniform();
  double u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  DT_CHECK_GT(rate, 0.0);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

std::uint64_t Rng::powerlaw_int(std::uint64_t n, double alpha) {
  DT_CHECK_GT(n, 0u);
  if (alpha <= 0.0) return uniform_int(n);
  // Inverse-CDF of the continuous Pareto restricted to [1, n+1), shifted
  // to a 0-based index. Close enough to Zipf for workload skew purposes.
  double u = uniform();
  double exponent = 1.0 - alpha;
  double x;
  if (std::abs(exponent) < 1e-9) {
    x = std::pow(static_cast<double>(n) + 1.0, u);
  } else {
    double hi = std::pow(static_cast<double>(n) + 1.0, exponent);
    x = std::pow(1.0 + u * (hi - 1.0), 1.0 / exponent);
  }
  auto idx = static_cast<std::uint64_t>(x - 1.0);
  return idx >= n ? n - 1 : idx;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<float>& weights) {
  DT_CHECK(!weights.empty());
  double total = 0.0;
  for (float w : weights) {
    DT_CHECK_GE(w, 0.0f);
    total += w;
  }
  if (total <= 0.0) return uniform_int(weights.size());
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() {
  // Mix the parent stream into a fresh seed; the golden-ratio increment
  // guarantees distinct child streams for consecutive splits.
  return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace disttgl
