// Checked-assertion macros used across DistTGL.
//
// DT_CHECK is always on (release included): invariants in this codebase
// guard shared-memory protocols and schedule correctness, where silent
// corruption is far more expensive than a branch.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace disttgl {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DT_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace disttgl

#define DT_CHECK(cond)                                              \
  do {                                                              \
    if (!(cond)) ::disttgl::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define DT_CHECK_MSG(cond, msg)                                   \
  do {                                                            \
    if (!(cond)) {                                                \
      std::ostringstream dt_os_;                                  \
      dt_os_ << msg;                                              \
      ::disttgl::check_failed(#cond, __FILE__, __LINE__, dt_os_.str()); \
    }                                                             \
  } while (0)

#define DT_CHECK_EQ(a, b) DT_CHECK_MSG((a) == (b), "lhs=" << (a) << " rhs=" << (b))
#define DT_CHECK_NE(a, b) DT_CHECK_MSG((a) != (b), "both=" << (a))
#define DT_CHECK_LT(a, b) DT_CHECK_MSG((a) < (b), "lhs=" << (a) << " rhs=" << (b))
#define DT_CHECK_LE(a, b) DT_CHECK_MSG((a) <= (b), "lhs=" << (a) << " rhs=" << (b))
#define DT_CHECK_GT(a, b) DT_CHECK_MSG((a) > (b), "lhs=" << (a) << " rhs=" << (b))
#define DT_CHECK_GE(a, b) DT_CHECK_MSG((a) >= (b), "lhs=" << (a) << " rhs=" << (b))
