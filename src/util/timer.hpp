// Wall-clock timing helpers used by the throughput harness and the
// pipeline profiler.
#pragma once

#include <chrono>

namespace disttgl {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  // Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates elapsed seconds into a target on destruction; used to
// attribute time to pipeline stages without littering call sites.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& target) : target_(target) {}
  ~ScopedAccumulator() { target_ += timer_.seconds(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& target_;
  WallTimer timer_;
};

}  // namespace disttgl
