// Shared bounded-spin → park wait policy.
//
// Every busy-wait in the system — the daemon slot protocol, the
// gradient-sync barrier, and the process fabric's shm handshakes — uses
// the same two-stage discipline: poll for a bounded number of
// iterations (the peer is usually one step away), then park on a futex
// so a descheduled peer does not cost a burning core. PRs 4–5 hardcoded
// the spin budget per call site; it is now one knob
// (`TrainingConfig::fabric.spin_polls`, 0 = park immediately) threaded
// through DaemonConfig, ThreadComm::Options and the fabric, so the
// fabric benches can sweep it and the pure-park regression tests can
// pin the threshold-free path.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace disttgl {

struct WaitPolicy {
  // Polls before parking. The common case — the peer is one protocol
  // step away — resolves within a few thousand polls; only a genuinely
  // descheduled peer (oversubscribed host, long bracket) reaches the
  // futex. 0 parks immediately (pure-park mode).
  std::uint32_t spin_polls = 4096;
};

// Blocks until `status` holds `value`. Spin stage yields every 64 polls;
// park stage uses std::atomic::wait (in-process futex).
inline void await_status(std::atomic<int>& status, int value,
                         const WaitPolicy& policy = {}) {
  for (std::uint32_t p = 0; p < policy.spin_polls; ++p) {
    if (status.load(std::memory_order_acquire) == value) return;
    if ((p & 0x3f) == 0x3f) std::this_thread::yield();
  }
  for (;;) {
    const int cur = status.load(std::memory_order_acquire);
    if (cur == value) return;
    status.wait(cur, std::memory_order_acquire);
  }
}

// Publishes `value` and wakes the (single) waiter. At most one peer ever
// waits on a given status word in the slot protocols (the trainer waits
// for 0, the daemon for 1, never simultaneously), so notify_one
// suffices.
inline void post_status(std::atomic<int>& status, int value) {
  status.store(value, std::memory_order_release);
  status.notify_one();
}

// Poison value for abortable slot protocols: an aborting peer stores it
// into every status word so parked waiters wake and bail instead of
// waiting forever for a handshake that will never come.
inline constexpr int kStatusPoison = -1;

// Like await_status, but returns false when the word is poisoned instead
// of waiting for `value` (which must not itself be the poison value).
inline bool await_status_abortable(std::atomic<int>& status, int value,
                                   const WaitPolicy& policy = {}) {
  for (std::uint32_t p = 0; p < policy.spin_polls; ++p) {
    const int cur = status.load(std::memory_order_acquire);
    if (cur == value) return true;
    if (cur == kStatusPoison) return false;
    if ((p & 0x3f) == 0x3f) std::this_thread::yield();
  }
  for (;;) {
    const int cur = status.load(std::memory_order_acquire);
    if (cur == value) return true;
    if (cur == kStatusPoison) return false;
    status.wait(cur, std::memory_order_acquire);
  }
}

// CAS-based post for abortable protocols: succeeds only on the expected
// `from` → `to` transition. Failure means another writer raced us — in
// the slot protocols the only legal racer is an aborting peer storing
// kStatusPoison, so false ⇔ the session is being torn down. notify_all
// because an aborter may be observing the word alongside the peer.
inline bool try_post_status(std::atomic<int>& status, int from, int to) {
  int expected = from;
  if (!status.compare_exchange_strong(expected, to, std::memory_order_acq_rel,
                                      std::memory_order_acquire))
    return false;
  status.notify_all();
  return true;
}

}  // namespace disttgl
