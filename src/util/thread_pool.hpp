// Fixed-size worker pool used by the prefetcher and the threaded
// orchestrator's auxiliary tasks.
//
// Deliberately simple: a mutex-guarded deque of std::function jobs and a
// condition variable. The pool is not in any hot loop (per-iteration work
// is batched), so contention on the queue lock is irrelevant; clarity and
// correct shutdown semantics win.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace disttgl {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a job; returns a future for completion/exception propagation.
  std::future<void> submit(std::function<void()> job);

  // Blocks until every job submitted so far has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace disttgl
