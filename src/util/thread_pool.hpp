// Fixed-size worker pool used by the GEMM engine, the prefetcher's
// batch-construction jobs and the batched neighbor sampler.
//
// Two entry points:
//
//  - submit(): a mutex-guarded deque of std::function jobs and a
//    condition variable. Not in any hot loop (per-iteration work is
//    batched), so contention on the queue lock is irrelevant; clarity
//    and correct shutdown semantics win. Submission allocates (the
//    type-erased job), which is why hot paths use parallel_for instead.
//
//  - parallel_for(): an allocation-free data-parallel fan-out. Chunks
//    are claimed from an atomic counter by the pool workers *and the
//    calling thread*, so completion never depends on a free worker
//    (safe to call from inside a submitted job). Concurrent callers are
//    serialized; chunk-to-thread assignment is nondeterministic, so
//    bodies must write disjoint output (every caller in this repo does).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace disttgl {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a job; returns a future for completion/exception propagation.
  std::future<void> submit(std::function<void()> job);

  // Blocks until every job submitted so far has finished.
  void wait_idle();

  // Runs fn(ctx, chunk) for every chunk in [0, num_chunks) on the pool
  // workers plus the calling thread; returns when all chunks finished.
  // Performs no heap allocation. `fn` must not throw.
  void parallel_for(std::size_t num_chunks, void (*fn)(void*, std::size_t),
                    void* ctx);

  // As parallel_for, but never queues behind another in-flight
  // parallel_for: if one is running (callers are serialized), returns
  // false immediately without touching the chunks. Lets latency-critical
  // callers (the memory daemon's gathers) fall back to their serial path
  // instead of stalling behind background fan-outs on the same pool.
  bool try_parallel_for(std::size_t num_chunks,
                        void (*fn)(void*, std::size_t), void* ctx);

  template <class F>
  void parallel_for(std::size_t num_chunks, F&& body) {
    using Body = std::remove_reference_t<F>;
    parallel_for(
        num_chunks,
        [](void* c, std::size_t i) { (*static_cast<Body*>(c))(i); }, &body);
  }

  template <class F>
  bool try_parallel_for(std::size_t num_chunks, F&& body) {
    using Body = std::remove_reference_t<F>;
    return try_parallel_for(
        num_chunks,
        [](void* c, std::size_t i) { (*static_cast<Body*>(c))(i); }, &body);
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();
  // Broadcast + chunk-claim loop shared by parallel_for and
  // try_parallel_for; pf_call_mu_ must be held by the caller.
  void run_parallel_for_locked(std::size_t num_chunks,
                               void (*fn)(void*, std::size_t), void* ctx);
  // True while unclaimed parallel_for chunks exist (mu_ must be held).
  bool pf_work_available() const {
    return pf_fn_ != nullptr &&
           pf_next_.load(std::memory_order_relaxed) < pf_total_;
  }

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;

  // parallel_for broadcast state. pf_call_mu_ serializes callers; the
  // remaining fields are written under mu_ by the active caller and read
  // by workers after observing pf_work_available() under mu_ (they stay
  // valid until the caller has seen pf_done_ == pf_total_).
  std::mutex pf_call_mu_;
  std::condition_variable pf_done_cv_;
  void (*pf_fn_)(void*, std::size_t) = nullptr;
  void* pf_ctx_ = nullptr;
  std::size_t pf_total_ = 0;
  std::atomic<std::size_t> pf_next_{0};
  std::atomic<std::size_t> pf_done_{0};
};

}  // namespace disttgl
