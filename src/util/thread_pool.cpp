#include "util/thread_pool.hpp"

#include "util/check.hpp"

namespace disttgl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  DT_CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    DT_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t num_chunks,
                              void (*fn)(void*, std::size_t), void* ctx) {
  if (num_chunks == 0) return;
  if (num_chunks == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < num_chunks; ++i) fn(ctx, i);
    return;
  }
  std::lock_guard<std::mutex> call_lock(pf_call_mu_);
  run_parallel_for_locked(num_chunks, fn, ctx);
}

bool ThreadPool::try_parallel_for(std::size_t num_chunks,
                                  void (*fn)(void*, std::size_t), void* ctx) {
  if (num_chunks == 0) return true;
  if (num_chunks == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < num_chunks; ++i) fn(ctx, i);
    return true;
  }
  if (!pf_call_mu_.try_lock()) return false;
  std::lock_guard<std::mutex> call_lock(pf_call_mu_, std::adopt_lock);
  run_parallel_for_locked(num_chunks, fn, ctx);
  return true;
}

void ThreadPool::run_parallel_for_locked(std::size_t num_chunks,
                                         void (*fn)(void*, std::size_t),
                                         void* ctx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pf_fn_ = fn;
    pf_ctx_ = ctx;
    pf_total_ = num_chunks;
    pf_next_.store(0, std::memory_order_relaxed);
    pf_done_.store(0, std::memory_order_relaxed);
  }
  cv_.notify_all();
  // The caller claims chunks too: completion never depends on a free
  // worker, so calling from inside a submitted job cannot deadlock.
  // (Unlocked claims are safe here — the caller's claims always belong
  // to its own, current call.)
  for (;;) {
    const std::size_t i = pf_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_chunks) break;
    fn(ctx, i);
    pf_done_.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(mu_);
  pf_done_cv_.wait(lock, [&] {
    return pf_done_.load(std::memory_order_acquire) == num_chunks;
  });
  pf_fn_ = nullptr;
  pf_ctx_ = nullptr;
  pf_total_ = 0;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] {
      return stop_ || !queue_.empty() || pf_work_available();
    });
    if (stop_ && queue_.empty()) return;

    // Claim parallel_for chunks while HOLDING the lock: calls swap the
    // broadcast state under the same lock, so a claim can never leak
    // into a later call (a worker descheduled between an unlocked claim
    // and the body would otherwise run a dead closure and credit its
    // completion to the wrong call). The claimed chunk keeps its call
    // alive — the caller cannot observe pf_done_ == total and return
    // until this chunk's completion is counted below.
    while (pf_work_available()) {
      auto fn = pf_fn_;
      void* ctx = pf_ctx_;
      const std::size_t total = pf_total_;
      const std::size_t i = pf_next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      lock.unlock();
      fn(ctx, i);
      lock.lock();
      if (pf_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        pf_done_cv_.notify_all();  // under mu_: the caller is waiting on it
      }
    }
    if (stop_ && queue_.empty()) return;
    if (queue_.empty()) continue;  // back to the wait

    std::packaged_task<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();  // Exceptions propagate through the packaged_task's future.
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace disttgl
