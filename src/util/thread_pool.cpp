#include "util/thread_pool.hpp"

#include "util/check.hpp"

namespace disttgl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  DT_CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    DT_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // Exceptions propagate through the packaged_task's future.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace disttgl
