// Cross-process futex wait/wake on 32-bit words in shared memory.
//
// std::atomic::wait would be the natural fit, but libstdc++ may route
// small atomics through a per-process proxy table, which silently
// degrades to "never woken" when the waiter and the waker live in
// different processes. The process fabric therefore parks on the raw
// futex syscall (FUTEX_WAIT/FUTEX_WAKE *without* FUTEX_PRIVATE_FLAG —
// the shared variant) against words placed directly in the shm
// segment. Non-Linux builds fall back to a yield loop; the fabric is
// Linux-first (the paper's testbed and every CI job run Linux).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#else
#include <thread>
#endif

namespace disttgl {

// Parks until *word != expected, a wake arrives, or `timeout` elapses.
// Spurious returns are fine (callers re-check the predicate); returns
// false only when the timeout expired with the value still unchanged.
inline bool futex_wait_shared(const std::atomic<std::uint32_t>* word,
                              std::uint32_t expected,
                              std::chrono::nanoseconds timeout) {
#if defined(__linux__)
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout.count() / 1000000000);
  ts.tv_nsec = static_cast<long>(timeout.count() % 1000000000);
  const long rc =
      syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
              FUTEX_WAIT, expected, &ts, nullptr, 0);
  if (rc == -1 && errno == ETIMEDOUT &&
      word->load(std::memory_order_acquire) == expected)
    return false;
  return true;  // woken, value changed (EAGAIN), or EINTR — caller re-checks
#else
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (word->load(std::memory_order_acquire) == expected) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::yield();
  }
  return true;
#endif
}

// Wakes every process parked on `word`.
inline void futex_wake_all_shared(const std::atomic<std::uint32_t>* word) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(word), FUTEX_WAKE,
          INT32_MAX, nullptr, nullptr, 0);
#else
  (void)word;
#endif
}

}  // namespace disttgl
