// Training-pipeline throughput model (Figures 1, 2b, 12).
//
// Reproducing the paper's wall-clock numbers requires 32 T4 GPUs; what
// this repo reproduces instead is the *pipeline structure* that creates
// them. Each system is a different dependency graph over the same stage
// costs:
//
//   TGN   (reference impl): every stage strictly serial, heavyweight
//         per-iteration framework overhead, no overlap at all.
//   TGL   (mini-batch parallelism only): GPU compute overlaps sampling,
//         but all n trainers funnel through one shared node memory —
//         per-trainer memory ops serialize (lock + IPC overhead), and
//         multi-machine operation is unsupported.
//   DistTGL: per-group memory daemons overlap memory ops with compute;
//         prefetching hides disk; cross-machine traffic is weight
//         gradients only. The residual scaling limits are the weight
//         allreduce and — for large batches — host DRAM bandwidth shared
//         by the k daemons on one machine (the paper's GDELT k=8 case).
//
// Stage costs come from FabricSpec (hardware) and IterationProfile
// (per-iteration volumes, measured from real mini-batches built by the
// calibration helper in bench/).
#pragma once

#include "distributed/fabric.hpp"

namespace disttgl::dist {

struct IterationProfile {
  double fetch_bytes = 0.0;      // presampled mini-batch blob (disk)
  double mem_read_bytes = 0.0;   // node memory + mails gathered per trainer
  double mem_write_bytes = 0.0;  // root rows written back per trainer
  double feature_bytes = 0.0;    // node/edge feature slicing volume
  double gpu_flops = 0.0;        // forward+backward per trainer iteration
  double weight_bytes = 0.0;     // model size (gradient allreduce payload)
  std::size_t local_batch = 0;   // positive events per trainer iteration
};

struct ParallelPlan {
  std::size_t i = 1;  // mini-batch parallelism
  std::size_t j = 1;  // epoch parallelism
  std::size_t k = 1;  // memory parallelism
  std::size_t machines = 1;
  std::size_t total_gpus() const { return i * j * k; }
};

enum class SystemKind { kTGN, kTGL, kDistTGL };

// Implementation-quality constants (software overheads measured against
// the paper's reported baselines; see bench/fig12*_... for calibration).
struct SystemConstants {
  double tgn_overhead_s = 0.055;        // reference impl per-iteration
  double tgn_serial_multiplier = 1.5;   // un-fused kernels etc.
  double tgl_memop_overhead_s = 0.0055; // per-trainer lock + IPC
  double tgl_overhead_s = 0.003;
  double disttgl_overhead_s = 0.0006;   // daemon handshake
  // Host DRAM derate for row-gather (random access) patterns.
  double random_access_efficiency = 0.4;
  // Each daemon operation touches its payload several times (gather into
  // the response buffer, staging, pinned-copy for the GPU) — §3.3's
  // shared-buffer protocol.
  double daemon_passes = 3.0;
  // Concurrent daemons on one machine contend beyond fair bandwidth
  // sharing: their random gather streams evict each other's cached rows,
  // so the penalty grows with the per-round payload and with the number
  // of *other* daemons. Calibrated against the paper's GDELT 1x1x8
  // slowdown vs the flat Wikipedia 1x1x8 (Fig 12b).
  double daemon_cache_scale_bytes = 150e6;
};

struct ThroughputEstimate {
  double iteration_seconds = 0.0;
  double events_per_second = 0.0;         // cluster-wide
  double per_gpu_events_per_second = 0.0;
  // Stage breakdown of one iteration (critical-path accounting).
  double gpu_seconds = 0.0;
  double memory_seconds = 0.0;
  double fetch_seconds = 0.0;
  double sync_seconds = 0.0;
  double overhead_seconds = 0.0;
};

ThroughputEstimate estimate_throughput(SystemKind system, const FabricSpec& fabric,
                                       const IterationProfile& profile,
                                       const ParallelPlan& plan,
                                       const SystemConstants& consts = SystemConstants());

}  // namespace disttgl::dist
