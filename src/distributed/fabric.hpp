// Hardware fabric cost model.
//
// Constants mirror the paper's testbed (§4.0.2): AWS g4dn.metal — 8×
// NVIDIA T4 per machine (PCIe 3.0, no NVLink), dual Xeon 8259CL with
// shared DDR4 bandwidth, 2× NVMe RAID0, 100 Gbps Ethernet between
// machines. The throughput benches (Fig 2b, Fig 12) are *simulations* on
// this model: we claim shape fidelity (scaling curves, who wins), not
// absolute seconds. Every constant is a plain struct field so ablation
// benches can sweep them.
#pragma once

#include <cstddef>

namespace disttgl::dist {

struct FabricSpec {
  // GPU compute: T4 FP32 peak is ~8.1 TFLOPS; TGN-attn's small irregular
  // kernels (gather-heavy attention over ≤10 neighbors, GRU on a few
  // thousand rows) reach only single-digit percent of peak — calibrated
  // against the paper's 23.77 kE/s single-T4 Wikipedia rate.
  double gpu_tflops = 8.1;
  double gpu_efficiency = 0.075;
  // Host DRAM bandwidth available to memory daemons (per machine, GB/s).
  // Dual Xeon 8259CL: ~2×6 DDR4-2666 channels ≈ 120 GB/s peak; half is
  // realistically reachable by the daemon processes.
  double host_mem_gbps = 60.0;
  // Host↔GPU PCIe 3.0 x8 effective bandwidth (GB/s) and latency.
  double pcie_gbps = 6.0;
  double pcie_latency_us = 10.0;
  // Cross-machine Ethernet: 100 Gbps ≈ 12.5 GB/s.
  double eth_gbps = 12.5;
  double eth_latency_us = 30.0;
  // NVMe RAID0 streaming reads.
  double disk_gbps = 4.0;
  double disk_latency_us = 100.0;
  // Fixed per-iteration framework overhead (kernel launches, Python/C++
  // dispatch). TGN's reference implementation pays far more than TGL's.
  double framework_overhead_us = 300.0;
};

// Ring-allreduce wall time for `bytes` over `ranks` participants spread
// across `machines` machines. The slowest link (Ethernet when machines >
// 1, PCIe otherwise) dominates each of the 2(r−1) ring steps.
double allreduce_seconds(const FabricSpec& f, std::size_t bytes,
                         std::size_t ranks, std::size_t machines);

// Point-to-point transfer time.
double p2p_seconds(const FabricSpec& f, std::size_t bytes, bool cross_machine);

// Host-memory streaming time for `bytes`, with `concurrent` daemons
// sharing the bus on one machine.
double host_mem_seconds(const FabricSpec& f, std::size_t bytes,
                        std::size_t concurrent);

// Disk fetch time for one mini-batch blob.
double disk_seconds(const FabricSpec& f, std::size_t bytes);

// GPU compute time for `flops` floating point operations.
double gpu_seconds(const FabricSpec& f, double flops);

}  // namespace disttgl::dist
