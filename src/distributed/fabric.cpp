#include "distributed/fabric.hpp"

#include "util/check.hpp"

namespace disttgl::dist {

double allreduce_seconds(const FabricSpec& f, std::size_t bytes,
                         std::size_t ranks, std::size_t machines) {
  DT_CHECK_GT(ranks, 0u);
  DT_CHECK_GT(machines, 0u);
  if (ranks == 1) return 0.0;
  // Ring allreduce: 2(r−1) steps, each moving bytes/r over the slowest
  // link on the ring plus its latency.
  const bool cross = machines > 1;
  const double bw = (cross ? f.eth_gbps : f.pcie_gbps) * 1e9;
  const double lat = (cross ? f.eth_latency_us : f.pcie_latency_us) * 1e-6;
  const double steps = 2.0 * static_cast<double>(ranks - 1);
  const double chunk = static_cast<double>(bytes) / static_cast<double>(ranks);
  return steps * (lat + chunk / bw);
}

double p2p_seconds(const FabricSpec& f, std::size_t bytes, bool cross_machine) {
  const double bw = (cross_machine ? f.eth_gbps : f.pcie_gbps) * 1e9;
  const double lat =
      (cross_machine ? f.eth_latency_us : f.pcie_latency_us) * 1e-6;
  return lat + static_cast<double>(bytes) / bw;
}

double host_mem_seconds(const FabricSpec& f, std::size_t bytes,
                        std::size_t concurrent) {
  DT_CHECK_GT(concurrent, 0u);
  const double bw = f.host_mem_gbps * 1e9 / static_cast<double>(concurrent);
  return static_cast<double>(bytes) / bw;
}

double disk_seconds(const FabricSpec& f, std::size_t bytes) {
  return f.disk_latency_us * 1e-6 +
         static_cast<double>(bytes) / (f.disk_gbps * 1e9);
}

double gpu_seconds(const FabricSpec& f, double flops) {
  return flops / (f.gpu_tflops * 1e12 * f.gpu_efficiency);
}

}  // namespace disttgl::dist
