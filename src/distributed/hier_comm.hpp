// Hierarchical collective for the simulated multi-machine fabric:
// shm staging intra-host, a framed-TCP leader ring inter-host.
//
// Topology: the global world is split into `hosts` contiguous, balanced
// rank spans (host_span below). Ranks of one host share a ProcComm
// segment — reused verbatim for its staged rows, shared result row, and
// epoch barrier — and the first rank of each span is the host's leader,
// holding two TCP connections: one dialed to the successor leader, one
// accepted from the predecessor (all ring traffic flows in successor
// direction, so one duplex pair per leader suffices).
//
// Bitwise equivalence with ThreadComm/ProcComm is the load-bearing
// property (tests/test_equivalence.cpp compares weights, losses, and
// memory digests across fabrics with ASSERT_EQ, not tolerances), and it
// forbids the textbook hierarchical trick of reducing per-host partial
// sums and then combining them — float/double addition is not
// associative, so ((a+b)+(c+d)) need not equal (((a+b)+c)+d). Instead
// the reduction is a single left fold in double over global ranks 0..R-1
// in rank order, exactly the fold ThreadComm runs per element:
//
//   reduce:    a running double accumulator travels the leader chain
//              host 0 → 1 → … → H-1; each leader folds its local ranks'
//              staged rows one rank at a time (local order == contiguous
//              global order)
//   mean:      the last host computes mean = float(acc * (1/R)) — the
//              identical rounding point ThreadComm uses
//   broadcast: the float means ring forward H-1 → 0 → … → H-2; every
//              leader deposits them in its host's shared result row
//
// The chain serializes the payload through each host, which costs
// latency a production ring reduce-scatter would pipeline away — that
// trade (bitwise determinism over peak bandwidth) is deliberate and
// measured in BENCH_fabric.json against the throughput_model's
// cross-machine prediction.
//
// Fault containment matches ProcComm: every TCP wait carries a deadline,
// a leader that fails its ring I/O poisons the local barrier before
// rethrowing, so non-leader ranks fail kAborted instead of waiting out
// their own timeout, and a SIGKILLed remote host surfaces as a typed
// kPeerClosed/kPeerTimeout on its ring neighbours.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "distributed/chaos.hpp"
#include "distributed/proc_comm.hpp"
#include "distributed/rendezvous.hpp"
#include "distributed/socket.hpp"

namespace disttgl::dist {

// Balanced contiguous split: host h of H runs global ranks
// [h*base + min(h, rem), …) with base = world/H, rem = world%H. Pure
// function of (world, hosts) so the launcher, rendezvous map, and every
// rank derive the identical layout.
std::pair<std::size_t, std::size_t> host_span(std::size_t host,
                                              std::size_t world,
                                              std::size_t hosts);
std::size_t host_of_rank(std::size_t rank, std::size_t world,
                         std::size_t hosts);

// The two ring connections a host leader holds (invalid for followers
// and for hosts == 1). ChaosEndpoints so the whole ring can run under
// seeded fault injection; with chaos disabled they are plain framed
// endpoints.
struct RingEndpoints {
  ChaosEndpoint next;  // dialed to the successor leader (all sends)
  ChaosEndpoint prev;  // accepted from the predecessor (all receives)
};

// Leader side of ring setup: dial the successor's ring listener, accept
// the predecessor, and exchange an identity handshake both ways. Safe in
// any leader order — the kernel backlog completes a dial before the
// peer's accept runs, so dial-then-accept cannot deadlock.
//
// `epoch` is the collective sequence number the caller is (re)joining
// at: 0 on initial setup, the in-flight seq on a reconnect. It rides the
// handshake's seq field, and the accept side uses it to agree on where
// the retried collective resumes — a stale dial from an abandoned
// earlier attempt (lower seq) is discarded and re-accepted, while a
// predecessor at a *different* live epoch is a typed kAborted: the
// leaders disagree about which collective is in flight, which only the
// checkpoint-restart tier can reconcile.
RingEndpoints connect_ring(int listen_fd, const ClusterMap& map,
                           std::size_t host, Deadline deadline, bool nodelay,
                           const ChaosConfig& chaos = {},
                           std::uint64_t epoch = 0);

class HierComm final : public Comm {
 public:
  // Sub-kind word inside kCollective frames.
  enum class RingMsg : std::uint32_t {
    kHandshake = 1,  // ring setup: {host_from}
    kReduce = 2,     // forward chain: running double accumulator
    kBroadcast = 3,  // forward chain: final float means
    kGather = 4,     // ring allgather: one host's stepped param block
  };

  struct Topology {
    std::size_t world = 0;
    std::size_t hosts = 0;
    std::size_t host = 0;
    std::size_t global_rank = 0;
    std::size_t local_rank = 0;
    std::size_t local_world = 0;
  };
  static Topology topology_for(std::size_t rank, std::size_t world,
                               std::size_t hosts);

  // `local` is this host's shared staging segment (attach()ed by ranks,
  // create()d by the launcher), already sized for the payload. Leaders
  // pass their connected ring; followers pass a default RingEndpoints.
  HierComm(ProcComm local, Topology topo, RingEndpoints ring,
           std::chrono::milliseconds timeout);

  void reserve(std::size_t max_elems) override { local_.reserve(max_elems); }
  std::size_t capacity() const override { return local_.capacity(); }

  void allreduce_mean(std::size_t rank, std::span<float> data) override;
  void allreduce_step(std::size_t rank, std::span<float> grads,
                      std::span<float> params, ChunkStepFn fn,
                      void* ctx) override;

  // Counters live in host 0's segment header and are bumped by global
  // rank 0 (the convention every fabric shares: rank 0 accounts, rank 0
  // reports).
  std::uint64_t logical_bytes() const override {
    return local_.logical_bytes();
  }
  std::uint64_t num_allreduces() const override {
    return local_.num_allreduces();
  }

  void abort_session() override { local_.abort_session(); }
  bool aborted() const override { return local_.aborted(); }

  const Topology& topology() const { return topo_; }
  // Wire bytes this leader framed onto the ring (0 on followers).
  std::uint64_t tcp_bytes() const { return ring_.next.bytes_sent(); }

  // Reconnect tier (docs/ARCHITECTURE.md "Recovery ladder"): with a
  // policy installed, a leader whose ring phase dies with a *transient*
  // FabricError (fabric_errc_transient, plus kBadMagic stream desync —
  // a fresh stream plus an epoch-checked retry heals both) re-dials the
  // ring through the retained listener and re-runs the whole phase.
  // Re-running is bitwise safe: every phase reads only staged/result
  // rows frozen by the preceding barrier and rewrites its outputs by
  // idempotent copies, so a phase retried from its last completed
  // barrier epoch lands the identical bytes. Exhausted attempts or a
  // fatal code escalate to the existing poison-and-rethrow, i.e. the
  // supervisor's checkpoint-restart tier.
  struct ReconnectPolicy {
    FdHandle listener;  // the leader's ring listener, kept alive
    ClusterMap map;
    bool nodelay = true;
    RetryConfig retry;
    // Chaos knobs re-applied to the fresh endpoints; reset_at_byte is
    // disarmed on re-dial (the injected reset models ONE transient
    // fault), while the probabilistic knobs persist — they model the
    // environment, which a reconnect does not fix.
    ChaosConfig chaos;
    std::uint64_t jitter_seed = 0;  // deterministic backoff jitter
  };
  void enable_reconnect(ReconnectPolicy policy);
  // Reconnect accounting for BENCH_recovery and the soak tests.
  std::uint64_t reconnects() const { return reconnects_; }
  double reconnect_seconds() const { return reconnect_seconds_; }

 private:
  bool is_leader() const { return topo_.local_rank == 0; }

  // Leader-only phases. Each fills the host's shared result row; any
  // ring failure poisons the local barrier before rethrowing.
  void leader_reduce_broadcast(std::size_t size);
  void leader_allgather_params(std::size_t size);

  // Runs a leader phase under the reconnect policy: transient failure →
  // backoff (capped exponential + deterministic jitter) → re-dial at the
  // current seq → re-run the phase, up to retry.max_attempts times.
  void run_leader_phase(void (HierComm::*phase)(std::size_t),
                        std::size_t size);
  void redial_ring(std::size_t attempt);

  void send_ring(RingMsg kind, std::size_t block_host,
                 std::span<const std::uint8_t> body, Deadline deadline);
  // Receives one kCollective frame, validating kind/seq/host; returns
  // the body (payload after the mini-header).
  std::span<const std::uint8_t> recv_ring(RingMsg kind,
                                          std::size_t expect_host,
                                          Deadline deadline);

  // Chunks owned by host `h`'s ranks, as (lo, hi) element ranges of a
  // `size`-element payload, in chunk order.
  void owned_ranges(std::size_t h, std::size_t size,
                    std::vector<std::pair<std::size_t, std::size_t>>& out)
      const;

  ProcComm local_;
  Topology topo_;
  RingEndpoints ring_;
  std::chrono::milliseconds timeout_;
  std::optional<ReconnectPolicy> reconnect_;
  std::uint64_t reconnects_ = 0;
  double reconnect_seconds_ = 0.0;

  // Leader scratch (persistent so steady-state calls stay cheap).
  std::vector<double> acc_;
  std::vector<float> block_;
  std::vector<std::uint8_t> body_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
  Frame frame_;
  std::uint64_t seq_ = 0;
};

}  // namespace disttgl::dist
