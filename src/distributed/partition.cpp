#include "distributed/partition.hpp"

#include <cmath>

#include "util/check.hpp"

namespace disttgl::dist {

PartitionCost partitioned_memory_epoch_cost(const FabricSpec& fabric,
                                            const PartitionWorkload& w,
                                            std::size_t machines) {
  DT_CHECK_GT(machines, 0u);
  DT_CHECK_GT(w.batch_size, 0u);
  const double iterations =
      std::ceil(static_cast<double>(w.events_per_epoch) / w.batch_size);
  const double row_bytes = static_cast<double>(w.mem_dim + w.mail_dim) * 4.0;

  // Rows touched per iteration: src+dst roots and their support sets for
  // reads; roots only for writes.
  const double read_rows = 2.0 * w.batch_size * w.support_factor;
  const double write_rows = 2.0 * w.batch_size;

  const double remote_frac =
      machines == 1 ? 0.0
                    : static_cast<double>(machines - 1) / machines;

  auto op_seconds = [&](double rows) {
    const double local_rows = rows * (1.0 - remote_frac);
    const double remote_rows = rows * remote_frac;
    // Local rows stream from host DRAM.
    double t = local_rows * row_bytes / (fabric.host_mem_gbps * 1e9);
    if (remote_rows > 0.0) {
      // Remote rows: one gather message per remote machine (latency), and
      // the payload serializes on this machine's NIC. The strict temporal
      // ordering of memory ops (§2.1.1) prevents overlapping them with
      // compute, so the epoch pays the full cost.
      const double msgs = static_cast<double>(machines - 1);
      t += msgs * fabric.eth_latency_us * 1e-6;
      t += remote_rows * row_bytes / (fabric.eth_gbps * 1e9);
    }
    return t;
  };

  PartitionCost cost;
  cost.read_seconds = iterations * op_seconds(read_rows);
  cost.write_seconds = iterations * op_seconds(write_rows);
  return cost;
}

}  // namespace disttgl::dist
