// UNIX-domain socket plumbing for the process fabric's control plane.
//
// Everything here is deadline-bounded and EINTR-safe: a peer that dies
// mid-write must surface as kPeerClosed/kTruncated within the caller's
// timeout, never as an indefinite block (tests/test_fabric_faults.cpp
// kills peers mid-protocol and storms blocking reads with signals to
// prove it). Listener creation handles the stale-socket case — a
// previous run that crashed leaves its socket file behind; we probe it
// with connect() and only unlink-and-rebind when the probe confirms no
// live listener (ECONNREFUSED). A live listener is kAddrInUse.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "distributed/wire.hpp"

namespace disttgl::dist {

using Deadline = std::chrono::steady_clock::time_point;

inline Deadline deadline_after(std::chrono::milliseconds ms) {
  return std::chrono::steady_clock::now() + ms;
}

// Owning file descriptor (close-on-destroy, move-only).
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }
  FdHandle(FdHandle&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

// Reads exactly `bytes.size()` bytes. EOF after >0 bytes → kTruncated;
// EOF at a frame boundary is the *caller's* call, so EOF at offset 0
// returns false instead of throwing. Deadline overrun → kPeerTimeout.
bool read_exact(int fd, std::span<std::uint8_t> bytes, Deadline deadline);

// Writes all of `bytes`; EPIPE/ECONNRESET → kPeerClosed, deadline
// overrun → kPeerTimeout.
void write_exact(int fd, std::span<const std::uint8_t> bytes,
                 Deadline deadline);

// Frame-level convenience over read_exact/write_exact. read_frame
// returns false on orderly EOF (connection closed at a frame boundary).
bool read_frame(int fd, Frame& out, Deadline deadline);
void write_frame(int fd, MsgType type, std::span<const std::uint8_t> payload,
                 Deadline deadline);

// Binds + listens on `path`, recovering from a stale socket file. Throws
// kAddrInUse when a live listener owns the path.
FdHandle unix_listen(const std::string& path, int backlog);

// Connects to `path`, retrying ECONNREFUSED/ENOENT until the deadline
// (the listener may not be up yet during rendezvous).
FdHandle unix_connect(const std::string& path, Deadline deadline);

// Accepts one connection, polling until the deadline.
FdHandle accept_conn(int listen_fd, Deadline deadline);

}  // namespace disttgl::dist
