// Socket plumbing (UNIX-domain + TCP) for the fabric's control and
// inter-host data planes.
//
// Everything here is deadline-bounded and EINTR-safe: a peer that dies
// mid-write must surface as kPeerClosed/kTruncated within the caller's
// timeout, never as an indefinite block (tests/test_fabric_faults.cpp
// kills peers mid-protocol and storms blocking reads with signals to
// prove it). Listener creation handles the stale-socket case — a
// previous run that crashed leaves its socket file behind; we probe it
// with connect() and only unlink-and-rebind when the probe confirms no
// live listener (ECONNREFUSED). A live listener is kAddrInUse, and the
// recovery itself is serialized through an O_EXCL lockfile so two
// probers cannot both unlink-and-bind — exactly one wins, the loser
// gets a deterministic kAddrInUse.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "distributed/wire.hpp"

namespace disttgl::dist {

using Deadline = std::chrono::steady_clock::time_point;

// "No deadline" sentinel: every wait still runs in bounded poll slices,
// it just never expires.
inline constexpr Deadline kNoDeadline = Deadline::max();

// Saturating: a duration too large to represent as a time_point (e.g.
// milliseconds::max() as an "effectively forever" bound) becomes
// kNoDeadline instead of overflowing now + ms into the past — which
// would turn every poll timeout into 0 ms and busy-spin the caller.
inline Deadline deadline_after(std::chrono::milliseconds ms) {
  const Deadline now = std::chrono::steady_clock::now();
  const auto headroom = std::chrono::duration_cast<std::chrono::milliseconds>(
      Deadline::max() - now);
  if (ms >= headroom) return kNoDeadline;
  return now + ms;
}

// Remaining milliseconds until `deadline`, clamped to [0, 60'000] for
// poll(2). The subtraction and comparison happen in the clock's native
// duration; nothing here can overflow even for kNoDeadline.
int poll_timeout_ms(Deadline deadline);

// Owning file descriptor (close-on-destroy, move-only).
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }
  FdHandle(FdHandle&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

// Reads exactly `bytes.size()` bytes. EOF after >0 bytes → kTruncated;
// EOF at a frame boundary is the *caller's* call, so EOF at offset 0
// returns false instead of throwing. Deadline overrun → kPeerTimeout.
bool read_exact(int fd, std::span<std::uint8_t> bytes, Deadline deadline);

// Writes all of `bytes`; EPIPE/ECONNRESET → kPeerClosed, deadline
// overrun → kPeerTimeout.
void write_exact(int fd, std::span<const std::uint8_t> bytes,
                 Deadline deadline);

// Frame-level convenience over read_exact/write_exact. read_frame
// returns false on orderly EOF (connection closed at a frame boundary).
bool read_frame(int fd, Frame& out, Deadline deadline);
void write_frame(int fd, MsgType type, std::span<const std::uint8_t> payload,
                 Deadline deadline);

// Binds + listens on `path`, recovering from a stale socket file. Throws
// kAddrInUse when a live listener owns the path, or when another process
// holds the recovery lock (`path + ".lock"`) mid-probe.
FdHandle unix_listen(const std::string& path, int backlog);

// Connects to `path`, retrying ECONNREFUSED/ENOENT until the deadline
// (the listener may not be up yet during rendezvous).
FdHandle unix_connect(const std::string& path, Deadline deadline);

// Accepts one connection, polling until the deadline.
FdHandle accept_conn(int listen_fd, Deadline deadline);

// ---- TCP (inter-host data plane) ----------------------------------------

// Binds + listens on host:port (SO_REUSEADDR; port 0 = ephemeral) and
// reports the actual bound port in `bound_port`. A port someone else
// owns is a typed kAddrInUse.
FdHandle tcp_listen(const std::string& host, std::uint16_t port, int backlog,
                    std::uint16_t& bound_port);

// Connects to host:port, retrying the transient errno set (ECONNREFUSED
// from a not-yet-bound listener, plus ETIMEDOUT / ECONNRESET /
// EHOSTUNREACH / ENETUNREACH from routing and backlog blips) under the
// deadline, with capped exponential backoff between attempts. Sets
// TCP_NODELAY when `nodelay` — fabric frames are latency-bound
// request/response pairs, so Nagle only adds round trips.
FdHandle tcp_connect(const std::string& host, std::uint16_t port,
                     Deadline deadline, bool nodelay = true);

// TCP_NODELAY on an already-connected socket (accepted connections don't
// inherit it portably).
void tcp_set_nodelay(int fd);

// One framed TCP connection. Thin owner around the fd: send/recv speak
// the same validated wire protocol as read_frame/write_frame, with a
// persistent send buffer so steady-state collective traffic does not
// reallocate per frame.
class TcpEndpoint {
 public:
  TcpEndpoint() = default;
  explicit TcpEndpoint(FdHandle fd) : fd_(std::move(fd)) {}

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  // Closes the connection (FIN — already-written bytes still deliver).
  // Used by the chaos layer's injected resets and by the ring-reconnect
  // path to tear a stream down before re-dialing.
  void close() { fd_.reset(); }

  void send(MsgType type, std::span<const std::uint8_t> payload,
            Deadline deadline);
  // False on orderly EOF at a frame boundary (peer closed cleanly).
  bool recv(Frame& out, Deadline deadline);

  // Bytes framed onto the wire so far (headers included) — the leak/
  // traffic accounting hook for BENCH_fabric.
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  FdHandle fd_;
  std::vector<std::uint8_t> send_buf_;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace disttgl::dist
