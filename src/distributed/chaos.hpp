// Deterministic network-chaos layer for the multi-machine fabric.
//
// ChaosEndpoint wraps a framed stream endpoint (TCP or UNIX — it is
// fd-level, so both socket families work) and injects seeded,
// reproducible faults on the SEND side: dropped frames, duplicated
// frames, single-bit payload corruption, partial-write truncation,
// bounded delivery delay, and a one-shot connection reset at a byte
// boundary. Every injected fault must surface on some peer as a *typed*
// FabricError — kBadChecksum for a flip, kTruncated/kPeerClosed for a
// cut, kPeerTimeout for a drop — never a hang and never silently wrong
// data; tests/test_fabric_chaos.cpp soaks a seeded grid of fault mixes
// over both socket families to pin exactly that.
//
// Injection is send-side only and per-frame: the receive path stays the
// production decoder, so what the chaos harness exercises is the real
// validation chain (FrameReader checksums, read_exact truncation
// classification, deadline bounds), not a parallel mock of it. Faults
// draw from a SplitMix64 stream seeded by (chaos.seed, stream id), so a
// failing grid cell replays bit-for-bit.
//
// RetryConfig is the companion policy knob set: how many times the
// HierComm leader ring re-dials after a *transient* fault (see
// fabric_errc_transient) before escalating to the supervisor's
// checkpoint restart — the middle rung of the recovery ladder
// (docs/ARCHITECTURE.md "Recovery ladder").
#pragma once

#include <cstdint>
#include <vector>

#include "distributed/socket.hpp"
#include "util/rng.hpp"

namespace disttgl::dist {

// fabric.chaos.* knobs (docs/TUNING.md "Network chaos"). All defaults
// are inert; `enabled` gates every draw so a default config costs one
// branch per send. Probabilities are per-frame and evaluated in a fixed
// order (reset, drop, duplicate, flip, truncate, delay) with at most one
// fault firing per frame, which keeps grid cells interpretable.
struct ChaosConfig {
  bool enabled = false;
  // Seed for the per-endpoint fault stream; combined with the stream id
  // (the sending host's index) so distinct links draw independently.
  std::uint64_t seed = 1;
  // Per-frame probability that the frame is silently not written. The
  // receiver's deadline turns a dropped frame into a typed kPeerTimeout.
  double drop_prob = 0.0;
  // Per-frame probability that the frame is written twice. The second
  // copy desyncs the ring sequence check (kBadMagic) unless a reconnect
  // heals the stream first.
  double duplicate_prob = 0.0;
  // Per-frame probability of sleeping delay_ms before the write — the
  // slow-link case; delivery stays bitwise intact.
  double delay_prob = 0.0;
  std::size_t delay_ms = 10;
  // Per-frame probability of flipping one payload bit (or a checksum bit
  // for empty payloads) — guaranteed kBadChecksum at the receiver.
  double flip_prob = 0.0;
  // Per-frame probability of writing only a strict prefix and closing
  // the connection: kPeerClosed at the sender, kTruncated (or orderly
  // EOF at a frame boundary) at the receiver.
  double truncate_prob = 0.0;
  // One-shot: when cumulative bytes sent on the endpoint would cross
  // this boundary, deliver the bytes up to it, close the connection, and
  // fail kPeerClosed — the reproducible "transient mid-run connection
  // reset" the ring-reconnect tier is built to heal. 0 = off.
  std::uint64_t reset_at_byte = 0;
};

// fabric.retry.* knobs (docs/TUNING.md "Network chaos"): bounded ring
// re-dial after a transient fault. max_attempts == 0 disables the tier
// entirely — every ring fault escalates straight to the supervisor,
// which is the pre-chaos behaviour.
struct RetryConfig {
  std::size_t max_attempts = 0;
  // Capped exponential backoff between re-dials: backoff_ms · 2^attempt
  // capped at backoff_cap_ms, jittered into [base/2, base] from the
  // deterministic per-host seed so simultaneously-failing leaders don't
  // stampede each other's listeners.
  std::size_t backoff_ms = 50;
  std::size_t backoff_cap_ms = 2'000;
};

// A framed endpoint with seeded send-side fault injection. With
// cfg.enabled == false this is a plain framed endpoint (one branch of
// overhead), so the ring uses it unconditionally.
class ChaosEndpoint {
 public:
  ChaosEndpoint() = default;
  // Passthrough wrapper (chaos disabled) — lets test harnesses assign a
  // bare TcpEndpoint into RingEndpoints unchanged.
  ChaosEndpoint(TcpEndpoint ep) : ep_(std::move(ep)) {}  // NOLINT(runtime/explicit)
  ChaosEndpoint(TcpEndpoint ep, const ChaosConfig& cfg,
                std::uint64_t stream_id);

  bool valid() const { return ep_.valid(); }
  int fd() const { return ep_.fd(); }
  // Closes the underlying connection (FIN). Orderly close matters: bytes
  // already written are still delivered, so a peer of an injected reset
  // observes a well-defined prefix, never lost acknowledged data.
  void close();

  void send(MsgType type, std::span<const std::uint8_t> payload,
            Deadline deadline);
  // Receive is the untouched production path (chaos is send-side only).
  bool recv(Frame& out, Deadline deadline);

  // Bytes actually written to the wire (headers + injected duplicates,
  // minus dropped/cut frames).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  // Faults injected on this endpoint so far (soak-test accounting).
  std::uint64_t faults_injected() const { return faults_; }

 private:
  TcpEndpoint ep_;
  ChaosConfig cfg_{};
  Rng rng_{1};
  std::vector<std::uint8_t> buf_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t faults_ = 0;
  bool reset_fired_ = false;
};

}  // namespace disttgl::dist
