#include "distributed/proc_comm.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "util/check.hpp"
#include "util/futex.hpp"

namespace disttgl::dist {

// Shared header at offset 0 of the segment. The barrier is the epoch
// kind: arrivals count `remaining` down; the last one resets it, bumps
// `epoch`, and wakes. No per-rank sense bit needed — a rank's "sense"
// is the epoch value it read on arrival.
struct ProcCommHeader {
  std::uint32_t magic;
  std::uint32_t world;
  std::uint64_t max_elems;
  std::uint64_t chunk_elems_opt;
  alignas(64) std::atomic<std::uint32_t> remaining;
  std::atomic<std::uint32_t> epoch;
  std::atomic<std::uint32_t> aborted;
  alignas(64) std::atomic<std::uint64_t> logical_bytes;
  std::atomic<std::uint64_t> num_calls;
};

static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shm words must be address-free for cross-process use");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

namespace {

constexpr std::uint32_t kProcCommMagic = 0x43474444u;  // "DDGC"

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

std::size_t max_chunks_for(std::size_t world, std::size_t max_elems,
                           std::size_t chunk_opt) {
  const std::size_t size = std::max<std::size_t>(max_elems, 1);
  const std::size_t chunk =
      chunk_opt != 0 ? chunk_opt : (size + world - 1) / world;
  return (size + chunk - 1) / chunk;
}

struct Layout {
  std::size_t sizes_off, norms_off, result_off, staged_off, total;
};

Layout layout_for(std::size_t world, std::size_t max_elems,
                  std::size_t chunk_opt) {
  Layout l{};
  std::size_t off = align_up(sizeof(ProcCommHeader), 64);
  l.sizes_off = off;
  off = align_up(off + world * sizeof(std::uint64_t), 64);
  l.norms_off = off;
  off = align_up(
      off + max_chunks_for(world, max_elems, chunk_opt) * sizeof(double), 64);
  l.result_off = off;
  off = align_up(off + max_elems * sizeof(float), 64);
  l.staged_off = off;
  off = align_up(off + world * max_elems * sizeof(float), 64);
  l.total = off;
  return l;
}

}  // namespace

std::size_t ProcComm::segment_bytes(std::size_t world, std::size_t max_elems,
                                    const Options& opts) {
  return layout_for(world, max_elems, opts.chunk_elems).total;
}

ProcComm::ProcComm(ShmSegment segment, std::size_t world, Options opts,
                   std::chrono::milliseconds timeout)
    : Comm(world, opts), segment_(std::move(segment)), timeout_(timeout) {
  hdr_ = segment_.as<ProcCommHeader>();
  const Layout l = layout_for(world, hdr_->max_elems, opts.chunk_elems);
  sizes_ = segment_.as<std::uint64_t>(l.sizes_off);
  norms_ = segment_.as<double>(l.norms_off);
  result_ = segment_.as<float>(l.result_off);
  staged_ = segment_.as<float>(l.staged_off);
}

ProcComm ProcComm::create(const std::string& shm_name, std::size_t world,
                          std::size_t max_elems, Options opts,
                          std::chrono::milliseconds timeout) {
  DT_CHECK_GT(world, 0u);
  ShmSegment seg =
      ShmSegment::create(shm_name, segment_bytes(world, max_elems, opts));
  auto* hdr = seg.as<ProcCommHeader>();
  hdr->world = static_cast<std::uint32_t>(world);
  hdr->max_elems = max_elems;
  hdr->chunk_elems_opt = opts.chunk_elems;
  hdr->remaining.store(static_cast<std::uint32_t>(world),
                       std::memory_order_relaxed);
  hdr->epoch.store(0, std::memory_order_relaxed);
  hdr->aborted.store(0, std::memory_order_relaxed);
  hdr->logical_bytes.store(0, std::memory_order_relaxed);
  hdr->num_calls.store(0, std::memory_order_relaxed);
  // Magic last: an attacher that somehow races creation sees a
  // not-yet-valid header, not a valid-looking half-initialized one.
  hdr->magic = kProcCommMagic;
  return ProcComm(std::move(seg), world, opts, timeout);
}

ProcComm ProcComm::attach(const std::string& shm_name, std::size_t world,
                          Options opts, std::chrono::milliseconds timeout) {
  // Map the header alone first to learn max_elems, then remap in full.
  std::uint64_t max_elems = 0;
  {
    ShmSegment peek = ShmSegment::attach(shm_name, sizeof(ProcCommHeader));
    const auto* hdr = peek.as<ProcCommHeader>();
    if (hdr->magic != kProcCommMagic)
      throw_fabric(FabricErrc::kBadMagic,
                   "shm " + shm_name + " is not a ProcComm segment");
    if (hdr->world != world)
      throw_fabric(FabricErrc::kShmFailure,
                   "shm " + shm_name + " world " +
                       std::to_string(hdr->world) + " != expected " +
                       std::to_string(world));
    if (hdr->chunk_elems_opt != opts.chunk_elems)
      throw_fabric(FabricErrc::kShmFailure,
                   "shm " + shm_name + " chunk_elems " +
                       std::to_string(hdr->chunk_elems_opt) +
                       " != expected " + std::to_string(opts.chunk_elems));
    max_elems = hdr->max_elems;
  }
  ShmSegment seg =
      ShmSegment::attach(shm_name, segment_bytes(world, max_elems, opts));
  return ProcComm(std::move(seg), world, opts, timeout);
}

void ProcComm::reserve(std::size_t max_elems) {
  if (max_elems > hdr_->max_elems)
    throw_fabric(FabricErrc::kCapacity,
                 "ProcComm segment holds " + std::to_string(hdr_->max_elems) +
                     " elems, reserve(" + std::to_string(max_elems) +
                     ") cannot grow a shared mapping");
}

std::size_t ProcComm::capacity() const { return hdr_->max_elems; }

std::uint64_t ProcComm::logical_bytes() const {
  return hdr_->logical_bytes.load(std::memory_order_relaxed);
}

std::uint64_t ProcComm::num_allreduces() const {
  return hdr_->num_calls.load(std::memory_order_relaxed);
}

void ProcComm::abort_session() {
  hdr_->aborted.store(1, std::memory_order_release);
  futex_wake_all_shared(&hdr_->epoch);
}

bool ProcComm::aborted() const {
  return hdr_->aborted.load(std::memory_order_acquire) != 0;
}

void ProcComm::barrier_wait(std::size_t rank) {
  (void)rank;
  if (aborted()) throw_fabric(FabricErrc::kAborted, "collective poisoned");
  const std::uint32_t my_epoch = hdr_->epoch.load(std::memory_order_acquire);
  if (hdr_->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    hdr_->remaining.store(static_cast<std::uint32_t>(ranks_),
                          std::memory_order_relaxed);
    hdr_->epoch.fetch_add(1, std::memory_order_release);
    futex_wake_all_shared(&hdr_->epoch);
  } else {
    for (std::uint32_t p = 0; p < opts_.wait.spin_polls; ++p) {
      if (hdr_->epoch.load(std::memory_order_acquire) != my_epoch) break;
      if ((p & 0x3f) == 0x3f) std::this_thread::yield();
    }
    const auto deadline = std::chrono::steady_clock::now() + timeout_;
    while (hdr_->epoch.load(std::memory_order_acquire) == my_epoch) {
      if (aborted()) throw_fabric(FabricErrc::kAborted, "collective poisoned");
      const auto left = deadline - std::chrono::steady_clock::now();
      if (left.count() <= 0) {
        // This rank's peers never arrived (died, wedged). Poison the
        // session so survivors fail fast instead of each waiting out a
        // full timeout.
        abort_session();
        throw_fabric(FabricErrc::kPeerTimeout,
                     "collective barrier: peers absent after " +
                         std::to_string(timeout_.count()) + " ms");
      }
      // Park in bounded slices so the abort flag is rechecked even if a
      // wake gets lost in the load→wait window.
      futex_wait_shared(
          &hdr_->epoch, my_epoch,
          std::min(std::chrono::duration_cast<std::chrono::nanoseconds>(left),
                   std::chrono::nanoseconds(100'000'000)));
    }
  }
  if (aborted()) throw_fabric(FabricErrc::kAborted, "collective poisoned");
}

void ProcComm::check_uniform_size(std::size_t rank, std::size_t size) {
  for (std::size_t r = 0; r < ranks_; ++r)
    DT_CHECK_MSG(sizes_[r] == size, "allreduce size mismatch: rank "
                                        << rank << " has " << size << ", rank "
                                        << r << " has " << sizes_[r]);
}

void ProcComm::account(std::size_t rank, std::size_t size) {
  if (rank != 0) return;
  hdr_->num_calls.fetch_add(1, std::memory_order_relaxed);
  hdr_->logical_bytes.fetch_add(ring_bytes(size), std::memory_order_relaxed);
}

void ProcComm::account_raw(std::uint64_t calls, std::uint64_t bytes) {
  hdr_->num_calls.fetch_add(calls, std::memory_order_relaxed);
  hdr_->logical_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

// The phase structure below is ThreadComm's, line for line, with the
// segment arrays in place of the vectors — same chunk partition, same
// fixed rank-order double accumulation, so results are bit-identical
// across fabrics (the property the cross-fabric equivalence grid pins).

void ProcComm::allreduce_mean(std::size_t rank, std::span<float> data) {
  DT_CHECK_LT(rank, ranks_);
  if (ranks_ == 1) return;
  const std::size_t size = data.size();
  reserve(size);  // typed kCapacity error on overflow; never grows
  const std::size_t stride = hdr_->max_elems;

  // Phase 1: deposit the contribution in this rank's fixed staging row.
  sizes_[rank] = size;
  if (size > 0)
    std::memcpy(staged_ + rank * stride, data.data(), size * sizeof(float));
  account(rank, size);
  barrier_wait(rank);

  // Phase 2: reduce-scatter owned chunks, fixed rank order.
  check_uniform_size(rank, size);
  const std::size_t chunk = chunk_elems_for(size);
  const std::size_t num_chunks = num_chunks_for(size);
  const double inv = 1.0 / static_cast<double>(ranks_);
  for (std::size_t c = rank; c < num_chunks; c += ranks_) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    for (std::size_t i = lo; i < hi; ++i) {
      double acc = 0.0;
      for (std::size_t r = 0; r < ranks_; ++r)
        acc += static_cast<double>(staged_[r * stride + i]);
      const float mean = static_cast<float>(acc * inv);
      result_[i] = mean;
      data[i] = mean;
    }
  }
  barrier_wait(rank);

  // Phase 3: allgather (no closing barrier — same re-entry argument as
  // ThreadComm: result_ is only rewritten after every rank has passed
  // the next call's phase-1 barrier, i.e. finished this copy).
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (c % ranks_ == rank) continue;
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    std::memcpy(data.data() + lo, result_ + lo, (hi - lo) * sizeof(float));
  }
}

void ProcComm::allreduce_step(std::size_t rank, std::span<float> grads,
                              std::span<float> params, ChunkStepFn fn,
                              void* ctx) {
  DT_CHECK_LT(rank, ranks_);
  DT_CHECK_EQ(grads.size(), params.size());
  const std::size_t size = grads.size();
  const std::size_t chunk = chunk_elems_for(size);
  const std::size_t num_chunks = num_chunks_for(size);

  if (ranks_ == 1) {
    step_single_rank(grads, fn, ctx);
    return;
  }

  reserve(size);
  const std::size_t stride = hdr_->max_elems;

  // Phase 1: deposit gradients.
  sizes_[rank] = size;
  if (size > 0)
    std::memcpy(staged_ + rank * stride, grads.data(), size * sizeof(float));
  account(rank, size);
  barrier_wait(rank);

  // Phase 2: reduce-scatter mean gradient + per-chunk partial norms.
  check_uniform_size(rank, size);
  const double inv = 1.0 / static_cast<double>(ranks_);
  for (std::size_t c = rank; c < num_chunks; c += ranks_) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    double partial = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      double acc = 0.0;
      for (std::size_t r = 0; r < ranks_; ++r)
        acc += static_cast<double>(staged_[r * stride + i]);
      const float mean = static_cast<float>(acc * inv);
      grads[i] = mean;
      partial += static_cast<double>(mean) * mean;
    }
    norms_[c] = partial;
  }
  barrier_wait(rank);

  // Phase 3: global norm (chunk-order sum), step owned chunks, publish.
  double sq = 0.0;
  for (std::size_t c = 0; c < num_chunks; ++c) sq += norms_[c];
  for (std::size_t c = rank; c < num_chunks; c += ranks_) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    fn(ctx, lo, hi, sq);
    std::memcpy(result_ + lo, params.data() + lo, (hi - lo) * sizeof(float));
  }
  barrier_wait(rank);

  // Phase 4: allgather updated parameters.
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (c % ranks_ == rank) continue;
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    std::memcpy(params.data() + lo, result_ + lo, (hi - lo) * sizeof(float));
  }
}

}  // namespace disttgl::dist
