// Multi-process transport for the collective: ThreadComm's algorithm,
// verbatim, over a POSIX shared-memory segment.
//
// Layout (offsets computed identically by creator and attachers from
// {world, max_elems, chunk option} — the header exists to *validate*
// that agreement, not to communicate it):
//
//   ProcCommHeader   magic/world/max_elems/chunk option, epoch barrier
//                    words, abort flag, traffic counters
//   sizes[world]     per-rank payload size (contract check)
//   norms[chunks]    per-chunk partial norms (fused path)
//   result[max]      shared result row (means / stepped params)
//   staged[world*max] per-rank contribution rows
//
// Synchronization is a sense-free epoch barrier: the last arrival
// resets the countdown, bumps the epoch, and futex-wakes the parked
// ranks; everyone else spins (WaitPolicy) then parks on the epoch word
// with the *shared* futex variant. Plain float staging is safe for the
// same reason ThreadComm's is — every access is ordered across the
// barrier's release/acquire epoch bump.
//
// Fault containment: every park slice carries the deadline. A rank that
// times out sets the abort word, wakes everyone, and throws
// kPeerTimeout; the woken peers observe the flag and throw kAborted.
// Nothing in this class ever blocks without a deadline, which is what
// lets tests/test_fabric_faults.cpp SIGKILL a peer mid-collective and
// still get a typed error and a clean teardown from the survivors.
//
// Lifecycle: the launcher parent create()s the segment (and unlinks it
// on destruction); ranks attach() by name and only munmap. Capacity is
// fixed at creation — reserve() beyond it is a typed kCapacity error,
// not a grow.
#pragma once

#include <chrono>
#include <string>

#include "distributed/comm.hpp"
#include "distributed/shm.hpp"

namespace disttgl::dist {

class ProcComm final : public Comm {
 public:
  // Bytes create() will allocate for a given geometry (layout + padding).
  static std::size_t segment_bytes(std::size_t world, std::size_t max_elems,
                                   const Options& opts);

  // Parent/creator side: makes + initializes the segment. The returned
  // ProcComm owns the segment (unlink on destruction) and is itself
  // usable as a rank handle.
  static ProcComm create(const std::string& shm_name, std::size_t world,
                         std::size_t max_elems, Options opts,
                         std::chrono::milliseconds timeout);

  // Rank side: attaches to an existing segment, validating the header
  // against this rank's expected geometry.
  static ProcComm attach(const std::string& shm_name, std::size_t world,
                         Options opts, std::chrono::milliseconds timeout);

  void reserve(std::size_t max_elems) override;
  std::size_t capacity() const override;

  void allreduce_mean(std::size_t rank, std::span<float> data) override;
  void allreduce_step(std::size_t rank, std::span<float> grads,
                      std::span<float> params, ChunkStepFn fn,
                      void* ctx) override;

  std::uint64_t logical_bytes() const override;
  std::uint64_t num_allreduces() const override;

  // Poisons the barrier: peers currently parked (or arriving later)
  // throw kAborted instead of waiting out their deadline. Error paths
  // and the fault tests use this for fast collective teardown.
  void abort_session() override;
  bool aborted() const override;

  const std::string& shm_name() const { return segment_.name(); }

 private:
  // HierComm reuses this segment as its intra-host transport: the staged
  // rows, the shared result row, and the epoch barrier — with its own
  // global-rank reduction on top (hier_comm.hpp).
  friend class HierComm;

  ProcComm(ShmSegment segment, std::size_t world, Options opts,
           std::chrono::milliseconds timeout);

  void barrier_wait(std::size_t rank);
  void check_uniform_size(std::size_t rank, std::size_t size);
  void account(std::size_t rank, std::size_t size);
  // Raw counter bump for HierComm, whose ring_bytes is computed over the
  // GLOBAL world (account() above would use this segment's local world).
  void account_raw(std::uint64_t calls, std::uint64_t bytes);

  // Typed views into the mapped segment (set once in the ctor).
  struct ProcCommHeader* hdr_ = nullptr;
  std::uint64_t* sizes_ = nullptr;
  double* norms_ = nullptr;
  float* result_ = nullptr;
  float* staged_ = nullptr;

  ShmSegment segment_;
  std::chrono::milliseconds timeout_;
};

}  // namespace disttgl::dist
