#include "distributed/comm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "distributed/fabric_error.hpp"
#include "util/check.hpp"

namespace disttgl::dist {

Comm::Comm(std::size_t ranks, Options opts) : ranks_(ranks), opts_(opts) {
  DT_CHECK_GT(ranks, 0u);
}

std::size_t Comm::chunk_elems_for(std::size_t size) const {
  if (size == 0) return 1;
  if (opts_.chunk_elems != 0) return opts_.chunk_elems;
  return (size + ranks_ - 1) / ranks_;
}

std::size_t Comm::num_chunks_for(std::size_t size) const {
  const std::size_t c = chunk_elems_for(size);
  return (size + c - 1) / c;
}

std::uint64_t Comm::ring_bytes(std::size_t size) const {
  return static_cast<std::uint64_t>(2.0 * (ranks_ - 1) / ranks_ * size *
                                    sizeof(float) * ranks_);
}

void Comm::step_single_rank(std::span<float> grads, ChunkStepFn fn,
                            void* ctx) const {
  const std::size_t size = grads.size();
  const std::size_t chunk = chunk_elems_for(size);
  const std::size_t num_chunks = num_chunks_for(size);
  double sq = 0.0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    double partial = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
      partial += static_cast<double>(grads[i]) * grads[i];
    sq += partial;
  }
  for (std::size_t c = 0; c < num_chunks; ++c)
    fn(ctx, c * chunk, std::min(c * chunk + chunk, size), sq);
}

ThreadComm::ThreadComm(std::size_t ranks) : ThreadComm(ranks, Options{}) {}

ThreadComm::ThreadComm(std::size_t ranks, Options opts)
    : Comm(ranks, opts), barrier_(ranks, opts.wait) {
  tokens_.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) tokens_.emplace_back(barrier_);
  sizes_.assign(ranks, 0);
}

void ThreadComm::reserve(std::size_t max_elems) {
  if (max_elems <= max_elems_) return;
  staged_.assign(ranks_ * max_elems, 0.0f);
  result_.assign(max_elems, 0.0f);
  norms_.assign(num_chunks_for(max_elems), 0.0);
  max_elems_ = max_elems;
}

void ThreadComm::sync(BarrierToken& token) {
  if (!token.wait())
    throw_fabric(FabricErrc::kAborted, "thread collective aborted by a peer");
}

// Payload sizes are identical across ranks by contract, so every rank
// evaluates the same predicate here and either all enter the grow phase
// or none do (max_elems_ only changes inside it, between barriers).
void ThreadComm::grow_if_needed(std::size_t rank, std::size_t size,
                                BarrierToken& token) {
  if (size <= max_elems_) return;
  sync(token);
  if (rank == 0) reserve(size);
  sync(token);
}

void ThreadComm::check_uniform_size(std::size_t rank, std::size_t size) {
  for (std::size_t r = 0; r < ranks_; ++r)
    DT_CHECK_MSG(sizes_[r] == size, "allreduce size mismatch: rank "
                                        << rank << " has " << size << ", rank "
                                        << r << " has " << sizes_[r]);
}

void ThreadComm::account(std::size_t rank, std::size_t size) {
  if (rank != 0) return;
  num_calls_.fetch_add(1, std::memory_order_relaxed);
  logical_bytes_.fetch_add(ring_bytes(size), std::memory_order_relaxed);
}

void ThreadComm::allreduce_mean(std::size_t rank, std::span<float> data) {
  DT_CHECK_LT(rank, ranks_);
  if (ranks_ == 1) return;
  BarrierToken& token = tokens_[rank];
  const std::size_t size = data.size();
  grow_if_needed(rank, size, token);

  // Phase 1: deposit the contribution in this rank's fixed staging row.
  sizes_[rank] = size;
  if (size > 0)
    std::memcpy(staged_.data() + rank * max_elems_, data.data(),
                size * sizeof(float));
  account(rank, size);
  sync(token);

  // Phase 2: reduce-scatter — this rank reduces only its owned chunks,
  // each in fixed rank order (deterministic), into the shared result row
  // and its own span.
  check_uniform_size(rank, size);
  const std::size_t chunk = chunk_elems_for(size);
  const std::size_t num_chunks = num_chunks_for(size);
  const double inv = 1.0 / static_cast<double>(ranks_);
  for (std::size_t c = rank; c < num_chunks; c += ranks_) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    for (std::size_t i = lo; i < hi; ++i) {
      double acc = 0.0;
      for (std::size_t r = 0; r < ranks_; ++r)
        acc += static_cast<double>(staged_[r * max_elems_ + i]);
      const float mean = static_cast<float>(acc * inv);
      result_[i] = mean;
      data[i] = mean;
    }
  }
  sync(token);

  // Phase 3: allgather — copy the chunks other ranks reduced. No closing
  // barrier: a rank re-entering can only write its own staging row (not
  // read here), and nobody can reach the next phase 2 (which overwrites
  // result_) until every rank has deposited — i.e. finished this copy.
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (c % ranks_ == rank) continue;
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    std::memcpy(data.data() + lo, result_.data() + lo,
                (hi - lo) * sizeof(float));
  }
}

void ThreadComm::allreduce_step(std::size_t rank, std::span<float> grads,
                                std::span<float> params, ChunkStepFn fn,
                                void* ctx) {
  DT_CHECK_LT(rank, ranks_);
  DT_CHECK_EQ(grads.size(), params.size());
  const std::size_t size = grads.size();
  const std::size_t chunk = chunk_elems_for(size);
  const std::size_t num_chunks = num_chunks_for(size);

  if (ranks_ == 1) {
    step_single_rank(grads, fn, ctx);
    return;
  }

  BarrierToken& token = tokens_[rank];
  grow_if_needed(rank, size, token);
  if (norms_.size() < num_chunks) {
    // Only reachable with a shrinking chunk_elems option; sized here
    // under the same all-ranks-agree reasoning as grow_if_needed.
    sync(token);
    if (rank == 0) norms_.resize(num_chunks, 0.0);
    sync(token);
  }

  // Phase 1: deposit gradients.
  sizes_[rank] = size;
  if (size > 0)
    std::memcpy(staged_.data() + rank * max_elems_, grads.data(),
                size * sizeof(float));
  account(rank, size);
  sync(token);

  // Phase 2: reduce-scatter the mean gradient into this rank's own
  // grads span (owned chunks only) and record per-chunk partial norms.
  check_uniform_size(rank, size);
  const double inv = 1.0 / static_cast<double>(ranks_);
  for (std::size_t c = rank; c < num_chunks; c += ranks_) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    double partial = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      double acc = 0.0;
      for (std::size_t r = 0; r < ranks_; ++r)
        acc += static_cast<double>(staged_[r * max_elems_ + i]);
      const float mean = static_cast<float>(acc * inv);
      grads[i] = mean;
      partial += static_cast<double>(mean) * mean;
    }
    norms_[c] = partial;
  }
  sync(token);

  // Phase 3: global norm (chunk-order sum — deterministic), then step
  // the owned chunks and publish the updated parameters.
  double sq = 0.0;
  for (std::size_t c = 0; c < num_chunks; ++c) sq += norms_[c];
  for (std::size_t c = rank; c < num_chunks; c += ranks_) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    fn(ctx, lo, hi, sq);
    std::memcpy(result_.data() + lo, params.data() + lo,
                (hi - lo) * sizeof(float));
  }
  sync(token);

  // Phase 4: allgather updated parameters (same re-entry argument as
  // allreduce_mean's phase 3).
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (c % ranks_ == rank) continue;
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    std::memcpy(params.data() + lo, result_.data() + lo,
                (hi - lo) * sizeof(float));
  }
}

}  // namespace disttgl::dist
