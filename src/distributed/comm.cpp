#include "distributed/comm.hpp"

#include <cstring>

#include "util/check.hpp"

namespace disttgl::dist {

ThreadComm::ThreadComm(std::size_t ranks) : ranks_(ranks), barrier_(ranks) {
  DT_CHECK_GT(ranks, 0u);
  tokens_.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) tokens_.emplace_back(barrier_);
}

void ThreadComm::allreduce_mean(std::size_t rank, std::span<float> data) {
  DT_CHECK_LT(rank, ranks_);
  if (ranks_ == 1) return;
  BarrierToken& token = tokens_[rank];

  // Phase 1: rank 0 sizes the staging area (one row per rank, so the
  // reduction below can run in a fixed rank order — bitwise deterministic
  // regardless of thread arrival order).
  if (rank == 0) {
    staged_.assign(ranks_ * data.size(), 0.0f);
    stride_ = data.size();
    num_calls_.fetch_add(1, std::memory_order_relaxed);
    // Ring allreduce volume: each rank sends 2(r−1)/r of the payload.
    logical_bytes_.fetch_add(
        static_cast<std::uint64_t>(2.0 * (ranks_ - 1) / ranks_ *
                                   data.size() * sizeof(float) * ranks_),
        std::memory_order_relaxed);
  }
  token.wait();

  // Phase 2: everyone deposits its contribution in its own row.
  DT_CHECK_EQ(stride_, data.size());
  std::memcpy(staged_.data() + rank * stride_, data.data(),
              data.size() * sizeof(float));
  token.wait();

  // Phase 3: everyone reduces in rank order and takes the mean.
  const double inv = 1.0 / static_cast<double>(ranks_);
  for (std::size_t i = 0; i < data.size(); ++i) {
    double acc = 0.0;
    for (std::size_t r = 0; r < ranks_; ++r)
      acc += static_cast<double>(staged_[r * stride_ + i]);
    data[i] = static_cast<float>(acc * inv);
  }
  token.wait();
}

}  // namespace disttgl::dist
