// Discrete-event simulation engine.
//
// The throughput experiments (Fig 2b, Fig 12) replay the training
// pipeline's stage graph on simulated hardware. Two pieces:
//
//  * EventSim — a classic future-event-list engine (time-ordered queue of
//    callbacks, FIFO tie-break) for tests and irregular processes.
//  * Timeline — a serially-reusable resource (GPU stream, host memory
//    bus, NIC, disk). `reserve(ready, duration)` books the earliest slot
//    at or after `ready` and returns the completion time. Pipelines are
//    then expressed as chains of reservations: a stage's `ready` is the
//    max of its dependencies' completions. This resource-reservation
//    formulation is equivalent to event simulation for FIFO resources
//    and keeps the pipeline models short and auditable.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace disttgl::dist {

using SimTime = double;

class EventSim {
 public:
  // Schedule `fn` at absolute time `t` (must be ≥ now() when running).
  void schedule(SimTime t, std::function<void()> fn);
  // Run until the event list drains. Returns the final clock.
  SimTime run();
  SimTime now() const { return now_; }
  std::size_t events_processed() const { return processed_; }

 private:
  struct Ev {
    SimTime t;
    std::uint64_t seq;  // FIFO tie-break
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
};

class Timeline {
 public:
  // Books [start, start+duration) where start = max(ready, free_at).
  // Returns completion time.
  SimTime reserve(SimTime ready, double duration) {
    const SimTime start = ready > free_at_ ? ready : free_at_;
    free_at_ = start + duration;
    busy_ += duration;
    return free_at_;
  }

  SimTime free_at() const { return free_at_; }
  // Total booked time — utilization numerator.
  double busy_time() const { return busy_; }
  void reset() {
    free_at_ = 0.0;
    busy_ = 0.0;
  }

 private:
  SimTime free_at_ = 0.0;
  double busy_ = 0.0;
};

}  // namespace disttgl::dist
