#include "distributed/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace disttgl::dist {

ChaosEndpoint::ChaosEndpoint(TcpEndpoint ep, const ChaosConfig& cfg,
                             std::uint64_t stream_id)
    : ep_(std::move(ep)),
      cfg_(cfg),
      rng_(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1))) {}

void ChaosEndpoint::close() { ep_.close(); }

bool ChaosEndpoint::recv(Frame& out, Deadline deadline) {
  return ep_.recv(out, deadline);
}

void ChaosEndpoint::send(MsgType type, std::span<const std::uint8_t> payload,
                         Deadline deadline) {
  buf_.clear();
  encode_frame(type, payload, buf_);
  if (cfg_.enabled) {
    // One-shot connection reset at a byte boundary: deliver the prefix
    // (orderly close flushes it), then fail typed. The boundary check
    // runs before any probability draw so the reset point is a pure
    // function of traffic volume, independent of the other knobs.
    if (cfg_.reset_at_byte > 0 && !reset_fired_ &&
        bytes_sent_ + buf_.size() > cfg_.reset_at_byte) {
      reset_fired_ = true;
      ++faults_;
      const std::size_t keep =
          cfg_.reset_at_byte > bytes_sent_
              ? std::min<std::size_t>(cfg_.reset_at_byte - bytes_sent_,
                                      buf_.size() - 1)
              : 0;
      if (keep > 0) write_exact(ep_.fd(), {buf_.data(), keep}, deadline);
      bytes_sent_ += keep;
      close();
      throw_fabric(FabricErrc::kPeerClosed,
                   "chaos: injected connection reset after " +
                       std::to_string(bytes_sent_) + " wire bytes");
    }
    if (cfg_.drop_prob > 0.0 && rng_.bernoulli(cfg_.drop_prob)) {
      // The frame vanishes; the connection stays up. The receiver's
      // deadline converts the starvation into a typed kPeerTimeout.
      ++faults_;
      return;
    }
    if (cfg_.duplicate_prob > 0.0 && rng_.bernoulli(cfg_.duplicate_prob)) {
      ++faults_;
      write_exact(ep_.fd(), buf_, deadline);
      write_exact(ep_.fd(), buf_, deadline);
      bytes_sent_ += 2 * buf_.size();
      return;
    }
    if (cfg_.flip_prob > 0.0 && rng_.bernoulli(cfg_.flip_prob)) {
      // One flipped payload bit must be caught by the frame checksum;
      // empty payloads flip a checksum-field bit instead, which fails
      // the same validation. Either way the receiver sees kBadChecksum,
      // never silently corrupted data.
      ++faults_;
      const bool has_payload = buf_.size() > kWireHeaderBytes;
      const std::size_t lo = has_payload ? kWireHeaderBytes : 12;
      const std::size_t span = has_payload ? buf_.size() - kWireHeaderBytes : 4;
      const std::size_t at =
          lo + static_cast<std::size_t>(rng_.uniform_int(span));
      buf_[at] ^= static_cast<std::uint8_t>(
          1u << static_cast<unsigned>(rng_.uniform_int(8)));
      write_exact(ep_.fd(), buf_, deadline);
      bytes_sent_ += buf_.size();
      return;
    }
    if (cfg_.truncate_prob > 0.0 && rng_.bernoulli(cfg_.truncate_prob)) {
      // Strict-prefix write then close: the peer that died mid-write.
      // Receiver classification: kTruncated mid-frame, orderly EOF when
      // the cut lands exactly on a frame boundary (keep == 0).
      ++faults_;
      const std::size_t keep =
          static_cast<std::size_t>(rng_.uniform_int(buf_.size()));
      if (keep > 0) write_exact(ep_.fd(), {buf_.data(), keep}, deadline);
      bytes_sent_ += keep;
      close();
      throw_fabric(FabricErrc::kPeerClosed,
                   "chaos: injected truncation (" + std::to_string(keep) +
                       "/" + std::to_string(buf_.size()) + " frame bytes)");
    }
    if (cfg_.delay_prob > 0.0 && rng_.bernoulli(cfg_.delay_prob)) {
      // Slow link: bounded sleep, then intact delivery. The write below
      // still carries the caller's deadline, so a delay that outlasts it
      // is a typed kPeerTimeout, not a hang.
      ++faults_;
      std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.delay_ms));
    }
  }
  write_exact(ep_.fd(), buf_, deadline);
  bytes_sent_ += buf_.size();
}

}  // namespace disttgl::dist
