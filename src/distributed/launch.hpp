// Fork-based rank launcher for the process fabric.
//
// ProcGroup::spawn forks `world` children while the parent is still
// single-threaded (fork in a multithreaded process inherits a snapshot
// of locked mutexes — we never risk it; the parent starts its
// rendezvous service only *after* every fork). Each child runs the
// user's rank function and reports back over a private pipe as a framed
// message: kResult with the function's serialized return value, or
// kErrorReport{errc, what} for a FabricError / any other exception.
// Children leave via _Exit — no atexit handlers, no double-flush of
// stdio buffers inherited from the parent.
//
// wait() is the only reaping path and it cannot hang: it polls the
// result pipes (EOF = child gone) with a deadline, then waitpid()s;
// stragglers past the deadline are SIGKILLed and reported as
// kChildFailed. kill_rank() exists for the fault tests, which murder a
// rank mid-collective and assert the survivors fail typed-and-fast.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "distributed/socket.hpp"

namespace disttgl::dist {

struct ChildResult {
  std::size_t rank = 0;
  bool ok = false;
  // Valid when !ok.
  FabricErrc errc = FabricErrc::kChildFailed;
  std::string message;
  // Valid when ok: the rank function's serialized return value.
  std::vector<std::uint8_t> payload;
};

class ProcGroup {
 public:
  // Runs in the child; the returned bytes travel back on the result
  // pipe (empty is fine — "done, nothing to say").
  using RankFn = std::function<std::vector<std::uint8_t>(std::size_t rank)>;

  // Forks one child per rank. Must be called from a single-threaded
  // process (see header comment).
  static ProcGroup spawn(std::size_t world, const RankFn& fn);

  ProcGroup(ProcGroup&&) = default;
  ProcGroup& operator=(ProcGroup&&) = default;
  ~ProcGroup();

  // Collects every child's result, SIGKILLing any still alive past the
  // deadline. Idempotent; the destructor calls it with a short deadline
  // if the caller forgot.
  //
  // When `heartbeat_timeout` is nonzero, the parent also supervises
  // liveness: once a rank has sent its first frame (heartbeat, note,
  // result — anything), silence from it longer than the timeout means
  // the rank is dead OR hung, so the whole group is SIGKILLed and the
  // silent rank reported kHeartbeatLost. Ranks that never frame are
  // covered by the launch deadline as before (startup cost must not
  // count against the beat cadence).
  //
  // `checkpoint_grace` widens the window per rank after a
  // kCheckpointNote frame: a snapshot write is fsync-bound and stalls
  // the beat loop without the rank being dead or hung, so a rank that
  // announced a save may stay silent up to the grace (instead of the
  // beat timeout) before the supervisor fires. 0 = no widening.
  std::vector<ChildResult> wait(
      std::chrono::milliseconds timeout,
      std::chrono::milliseconds heartbeat_timeout = std::chrono::milliseconds(0),
      std::chrono::milliseconds checkpoint_grace = std::chrono::milliseconds(0));

  // SIGKILL one rank (fault injection).
  void kill_rank(std::size_t rank);
  pid_t pid(std::size_t rank) const { return pids_.at(rank); }
  std::size_t world() const { return pids_.size(); }

 private:
  ProcGroup() = default;

  std::vector<pid_t> pids_;
  std::vector<FdHandle> result_pipes_;  // read ends, one per rank
  bool reaped_ = false;
};

// Convenience wrapper: spawn + wait + first-failure-throws. On success
// returns each rank's payload in rank order. On any child failure,
// throws a FabricError carrying the failing child's code (or
// kChildFailed for an unclassified death), naming the rank.
std::vector<std::vector<std::uint8_t>> disttgl_launch(
    std::size_t world, const ProcGroup::RankFn& fn,
    std::chrono::milliseconds timeout);

// Inside a forked rank: the child's end of its result pipe, for control
// frames (kHeartbeat, kCheckpointNote) ahead of the final result frame.
// -1 everywhere else (parent, thread fabric) — callers must gate on it.
int child_control_fd();

}  // namespace disttgl::dist
