#include "distributed/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace disttgl::dist {
namespace {

[[noreturn]] void throw_errno(FabricErrc code, const std::string& op) {
  throw_fabric(code, op + ": " + std::strerror(errno));
}

// Polls `fd` for `events`; returns true when ready, throws kPeerTimeout
// past the deadline. EINTR retries.
bool wait_ready(int fd, short events, Deadline deadline, const char* op) {
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline)
      throw_fabric(FabricErrc::kPeerTimeout, std::string(op) + ": deadline");
    pollfd pfd{fd, events, 0};
    const int rc = poll(&pfd, 1, poll_timeout_ms(deadline));
    if (rc > 0) return true;
    if (rc == -1 && errno != EINTR) throw_errno(FabricErrc::kSocketFailure, op);
  }
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw_fabric(FabricErrc::kSocketFailure,
                 "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

FdHandle make_socket() {
  // SOCK_CLOEXEC so forked ranks don't inherit each other's control fds.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno(FabricErrc::kSocketFailure, "socket");
  return FdHandle(fd);
}

}  // namespace

int poll_timeout_ms(Deadline deadline) {
  const Deadline now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  // Clamp in the clock's native duration *before* any cast: a sentinel
  // like kNoDeadline leaves `left` near the representable maximum, and
  // a duration_cast of that would overflow to a negative count — which
  // the old code folded to a 0 ms timeout, busy-spinning the caller.
  const Deadline::duration left = deadline - now;
  constexpr auto kMaxSlice = std::chrono::milliseconds(60'000);
  if (left >= kMaxSlice) return 60'000;
  return static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
}

void FdHandle::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool read_exact(int fd, std::span<std::uint8_t> bytes, Deadline deadline) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    wait_ready(fd, POLLIN, deadline, "read");
    const ssize_t n = ::read(fd, bytes.data() + done, bytes.size() - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0) return false;  // orderly EOF — caller decides
      throw_fabric(FabricErrc::kTruncated,
                   "peer closed after " + std::to_string(done) + "/" +
                       std::to_string(bytes.size()) + " bytes");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET)
      throw_fabric(FabricErrc::kPeerClosed, "read: connection reset");
    throw_errno(FabricErrc::kSocketFailure, "read");
  }
  return true;
}

void write_exact(int fd, std::span<const std::uint8_t> bytes,
                 Deadline deadline) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    wait_ready(fd, POLLOUT, deadline, "write");
    // MSG_NOSIGNAL: a dead peer must yield EPIPE, not a process-killing
    // SIGPIPE.
    const ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done,
                             MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == EPIPE || errno == ECONNRESET)
      throw_fabric(FabricErrc::kPeerClosed, "write: peer gone");
    throw_errno(FabricErrc::kSocketFailure, "write");
  }
}

bool read_frame(int fd, Frame& out, Deadline deadline) {
  std::uint8_t header[kWireHeaderBytes];
  if (!read_exact(fd, header, deadline)) return false;
  FrameReader reader;
  reader.feed(header);
  if (reader.poll(out)) return true;  // empty-payload frame
  // Header validated (poll would have thrown otherwise); the declared
  // length is trustworthy now, bounded by kWireMaxPayload.
  const std::uint32_t len =
      header[8] | (std::uint32_t{header[9]} << 8) |
      (std::uint32_t{header[10]} << 16) | (std::uint32_t{header[11]} << 24);
  std::vector<std::uint8_t> payload(len);
  if (!read_exact(fd, payload, deadline))
    throw_fabric(FabricErrc::kTruncated, "peer closed before payload");
  reader.feed(payload);
  if (!reader.poll(out))
    throw_fabric(FabricErrc::kTruncated, "frame incomplete after payload");
  return true;
}

void write_frame(int fd, MsgType type, std::span<const std::uint8_t> payload,
                 Deadline deadline) {
  std::vector<std::uint8_t> buf;
  encode_frame(type, payload, buf);
  write_exact(fd, buf, deadline);
}

FdHandle unix_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  FdHandle fd = make_socket();
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) == 0) {
    if (::listen(fd.get(), backlog) != 0)
      throw_errno(FabricErrc::kSocketFailure, "listen");
    return fd;
  }
  if (errno != EADDRINUSE) throw_errno(FabricErrc::kSocketFailure, "bind");

  // The path exists. Serialize recovery through an O_EXCL lockfile
  // before probing: two processes racing this path could otherwise both
  // see the stale socket refuse, both unlink, and both bind a fresh
  // listener (the second unlink removes the first's live socket). With
  // the lock exactly one recovers; the loser gets a deterministic
  // kAddrInUse instead of a coin flip.
  const std::string lock_path = path + ".lock";
  const int lock_fd =
      ::open(lock_path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0600);
  if (lock_fd < 0) {
    if (errno == EEXIST)
      throw_fabric(FabricErrc::kAddrInUse,
                   path + ": another process is recovering this address");
    throw_errno(FabricErrc::kSocketFailure, "open " + lock_path);
  }
  FdHandle lock(lock_fd);
  struct LockGuard {
    const std::string& p;
    ~LockGuard() { ::unlink(p.c_str()); }
  } lock_guard{lock_path};

  // Probe under the lock: a live listener accepts (or at least doesn't
  // refuse); a stale file from a crashed run refuses.
  {
    FdHandle probe = make_socket();
    if (::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      throw_fabric(FabricErrc::kAddrInUse,
                   "live listener already on " + path);
    if (errno != ECONNREFUSED && errno != ENOENT)
      throw_fabric(FabricErrc::kAddrInUse,
                   path + " probe: " + std::strerror(errno));
  }
  ::unlink(path.c_str());
  FdHandle fresh = make_socket();
  if (::bind(fresh.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno(FabricErrc::kSocketFailure, "rebind after stale unlink");
  if (::listen(fresh.get(), backlog) != 0)
    throw_errno(FabricErrc::kSocketFailure, "listen");
  return fresh;
}

FdHandle unix_connect(const std::string& path, Deadline deadline) {
  const sockaddr_un addr = make_addr(path);
  for (;;) {
    FdHandle fd = make_socket();
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    if (errno != ECONNREFUSED && errno != ENOENT && errno != EINTR &&
        errno != EAGAIN)
      throw_errno(FabricErrc::kSocketFailure, "connect " + path);
    if (std::chrono::steady_clock::now() >= deadline)
      throw_fabric(FabricErrc::kPeerTimeout, "connect " + path + ": deadline");
    // Listener not up yet (rendezvous race) — back off briefly.
    timespec ts{0, 2'000'000};  // 2 ms
    nanosleep(&ts, nullptr);
  }
}

FdHandle accept_conn(int listen_fd, Deadline deadline) {
  for (;;) {
    wait_ready(listen_fd, POLLIN, deadline, "accept");
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return FdHandle(fd);
    if (errno != EINTR && errno != EAGAIN && errno != ECONNABORTED)
      throw_errno(FabricErrc::kSocketFailure, "accept");
  }
}

// ---- TCP -----------------------------------------------------------------

namespace {

sockaddr_in make_inet_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw_fabric(FabricErrc::kSocketFailure,
                 "not an IPv4 address: " + host);
  return addr;
}

FdHandle make_tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno(FabricErrc::kSocketFailure, "socket(tcp)");
  return FdHandle(fd);
}

}  // namespace

void tcp_set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0)
    throw_errno(FabricErrc::kSocketFailure, "setsockopt TCP_NODELAY");
}

FdHandle tcp_listen(const std::string& host, std::uint16_t port, int backlog,
                    std::uint16_t& bound_port) {
  const sockaddr_in addr = make_inet_addr(host, port);
  FdHandle fd = make_tcp_socket();
  // SO_REUSEADDR: a just-closed listener's TIME_WAIT remnants must not
  // make rapid test restarts flaky. Safe here — exactly one live
  // listener per port still holds (bind of a *live* port fails).
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0)
    throw_errno(FabricErrc::kSocketFailure, "setsockopt SO_REUSEADDR");
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno == EADDRINUSE)
      throw_fabric(FabricErrc::kAddrInUse,
                   "live listener already on " + host + ":" +
                       std::to_string(port));
    throw_errno(FabricErrc::kSocketFailure, "bind(tcp)");
  }
  if (::listen(fd.get(), backlog) != 0)
    throw_errno(FabricErrc::kSocketFailure, "listen(tcp)");
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) != 0)
    throw_errno(FabricErrc::kSocketFailure, "getsockname");
  bound_port = ntohs(actual.sin_port);
  return fd;
}

FdHandle tcp_connect(const std::string& host, std::uint16_t port,
                     Deadline deadline, bool nodelay) {
  const sockaddr_in addr = make_inet_addr(host, port);
  for (std::size_t attempt = 0;; ++attempt) {
    FdHandle fd = make_tcp_socket();
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      if (nodelay) tcp_set_nodelay(fd.get());
      return fd;
    }
    // Transient connect failures all retry under the same deadline: a
    // listener not yet bound (rendezvous race, ECONNREFUSED), a SYN
    // dropped by a full backlog or lossy link (ETIMEDOUT), a reset
    // handed out mid-handshake (ECONNRESET), and routing blips while a
    // peer host reboots (EHOSTUNREACH/ENETUNREACH).
    const bool transient = errno == ECONNREFUSED || errno == ETIMEDOUT ||
                           errno == ECONNRESET || errno == EHOSTUNREACH ||
                           errno == ENETUNREACH || errno == EINTR ||
                           errno == EAGAIN;
    if (!transient)
      throw_errno(FabricErrc::kSocketFailure,
                  "connect " + host + ":" + std::to_string(port));
    if (std::chrono::steady_clock::now() >= deadline)
      throw_fabric(FabricErrc::kPeerTimeout, "connect " + host + ":" +
                                                 std::to_string(port) +
                                                 ": deadline");
    // Capped exponential backoff: quick on the common rendezvous race
    // (2 ms), without hammering a host that is genuinely rebooting.
    const long ms = std::min<long>(2L << std::min<std::size_t>(attempt, 6),
                                   100L);
    timespec ts{ms / 1000, (ms % 1000) * 1'000'000L};
    nanosleep(&ts, nullptr);
  }
}

void TcpEndpoint::send(MsgType type, std::span<const std::uint8_t> payload,
                       Deadline deadline) {
  send_buf_.clear();
  encode_frame(type, payload, send_buf_);
  write_exact(fd_.get(), send_buf_, deadline);
  bytes_sent_ += send_buf_.size();
}

bool TcpEndpoint::recv(Frame& out, Deadline deadline) {
  return read_frame(fd_.get(), out, deadline);
}

}  // namespace disttgl::dist
