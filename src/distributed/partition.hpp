// Distributed node-memory traffic model (Figure 2b).
//
// The paper motivates DistTGL by showing that the natural alternative —
// partitioning the node memory across machines, each owning |V|/p rows —
// collapses under remote memory operations: every mini-batch touches
// mostly *remote* rows ((p−1)/p of them under a uniform partition, and
// METIS-style partitioning is unusable on dynamic graphs), and the
// operations have strict temporal ordering, so they serialize on the
// network instead of overlapping with compute. This model reproduces the
// per-epoch read/write time of Figure 2b from first principles: row
// volumes from the batch shape, link costs from FabricSpec.
#pragma once

#include "distributed/fabric.hpp"

namespace disttgl::dist {

struct PartitionWorkload {
  std::size_t num_nodes = 0;
  std::size_t mem_dim = 100;        // node memory width (floats)
  std::size_t mail_dim = 372;       // cached mail width (floats)
  std::size_t events_per_epoch = 0;
  std::size_t batch_size = 600;
  // Unique supporting nodes touched per root event (root + neighbors
  // after dedup); ~(1 + K)·uniqueness. Measured ≈ 6–8 for K = 10.
  double support_factor = 7.0;
};

struct PartitionCost {
  double read_seconds = 0.0;
  double write_seconds = 0.0;
  double total_seconds() const { return read_seconds + write_seconds; }
};

// Per-epoch time spent in node-memory reads/writes when the memory is
// sharded over `machines` machines (1 = all local).
PartitionCost partitioned_memory_epoch_cost(const FabricSpec& fabric,
                                            const PartitionWorkload& w,
                                            std::size_t machines);

}  // namespace disttgl::dist
