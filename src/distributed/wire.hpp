// Control-plane wire protocol: length-prefixed, checksummed frames.
//
// Everything that crosses a fabric socket — rendezvous hellos/welcomes,
// child results, error reports — is one Frame: a fixed 16-byte header
// (magic, version, type, payload length, FNV-1a payload checksum)
// followed by the payload. The decoder is written against an
// adversarial peer: it validates the declared length *before* reserving
// memory (a hostile 4 GB length field must cost nothing), verifies the
// checksum before surfacing the payload, and classifies every failure
// as a typed FabricError. FrameReader is incremental so arbitrarily
// split reads — one byte at a time, or half a header then the rest —
// reassemble identically; tests/test_fabric_wire.cpp fuzzes exactly
// these properties from a deterministic seed corpus.
//
// All integers are little-endian (serialized byte-by-byte, so the
// encoding is identical on any host). Payload contents are built and
// parsed with WireWriter / WireCursor, whose reads are bounds-checked
// (overrun → kTruncated, never UB).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "distributed/fabric_error.hpp"

namespace disttgl::dist {

inline constexpr std::uint32_t kWireMagic = 0x4C475444;  // "DTGL" LE
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 16;
// Upper bound on a payload. Result frames carry model weights (a few MB
// at paper dims); control messages are tiny. 64 MiB bounds a hostile
// length field's allocation at something survivable.
inline constexpr std::size_t kWireMaxPayload = std::size_t{1} << 26;

enum class MsgType : std::uint16_t {
  kHello = 1,    // rank → rendezvous host: {world, rank}
  kWelcome = 2,  // host → rank: serialized RendezvousInfo
  kResult = 3,   // rank 0 → launcher parent: serialized train result
  kErrorReport = 4,  // any child → parent: {errc, message}
  kShutdown = 5,     // orderly teardown notice
  kHeartbeat = 6,    // child → parent liveness beacon: {rank, iteration}
  kCheckpointNote = 7,  // any rank → parent: snapshot begun/committed
  kCollective = 8,  // leader ↔ leader: HierComm ring traffic
                    // {kind, host_from, seq, elem count, raw elems}
  kScoreRequest = 9,   // client → serving tier: {id, memory copy,
                       //  n, src[n], dst[n], ts[n]} (score_wire.hpp)
  kScoreResponse = 10,  // serving tier → client: {id, snapshot
                        //  version, iteration, n, scores[n]}
};

struct Frame {
  MsgType type = MsgType::kShutdown;
  std::vector<std::uint8_t> payload;
};

// FNV-1a 32-bit over the payload (cheap, order-sensitive; this is a
// corruption check, not cryptography).
std::uint32_t wire_checksum(std::span<const std::uint8_t> payload);

// Appends header + payload to `out`.
void encode_frame(MsgType type, std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>& out);

// Incremental decoder. feed() appends raw bytes; poll() yields the next
// complete frame, throwing a typed FabricError on malformed input
// (kBadMagic / kBadVersion / kOversize / kBadChecksum). A reader that
// has thrown is poisoned and keeps throwing.
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> bytes);
  // True and fills `out` when a complete frame is buffered.
  bool poll(Frame& out);
  // Bytes buffered toward an incomplete frame (0 ⇔ clean boundary; EOF
  // here is orderly, EOF elsewhere is kTruncated).
  std::size_t pending() const { return buffer_.size() - consumed_; }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::optional<FabricError> poisoned_;
};

// ---- payload encoding helpers -------------------------------------------

class WireWriter {
 public:
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void put_bytes(std::span<const std::uint8_t> bytes);  // u64 length prefix
  void put_string(const std::string& s);                // u64 length prefix
  void put_f32s(std::span<const float> v);              // u64 count prefix
  void put_u32s(std::span<const std::uint32_t> v);      // u64 count prefix

  std::span<const std::uint8_t> bytes() const { return data_; }
  std::vector<std::uint8_t> take() { return std::move(data_); }
  // Empties the writer, keeping heap capacity — a long-lived writer
  // (serving response encoder, TcpEndpoint) reuses one buffer per frame.
  void clear() { data_.clear(); }

 private:
  std::vector<std::uint8_t> data_;
};

// Bounds-checked sequential reader over a payload; any overrun throws
// kTruncated.
class WireCursor {
 public:
  explicit WireCursor(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64();
  std::vector<std::uint8_t> get_bytes();
  std::string get_string();
  std::vector<float> get_f32s();
  // Capacity-preserving counterparts: decode a count-prefixed array into
  // a caller-owned vector (resize within capacity, then one memcpy), so
  // a steady-state decode loop — the serving tier's request path — never
  // touches the allocator once buffers reach their high-water size. The
  // count is bounds-checked against the remaining payload *before* the
  // resize, so a hostile count field costs nothing.
  void get_f32s_into(std::vector<float>& out);
  void get_u32s_into(std::vector<std::uint32_t>& out);

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace disttgl::dist
