// Rank rendezvous over a named UNIX socket.
//
// The launcher parent serves; each rank connects, sends
// HELLO{world, rank}, and receives WELCOME carrying the session's shm
// names. Rendezvous doubles as the startup barrier: the host does not
// return until every rank of the world has checked in, so a rank that
// passes rendezvous knows all its peers exist and all segments are
// created. Misuse is typed: a duplicate rank claim is kRankConflict
// (reported to both the host and the offending client), a world-size
// disagreement is kRankConflict too (same class of operator error), and
// binding over a live listener is kAddrInUse while a *stale* socket
// file from a crashed run is silently recovered (probe + unlink —
// socket.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "distributed/socket.hpp"

namespace disttgl::dist {

// Everything a rank needs to join the session. Serialized into the
// WELCOME payload.
struct RendezvousInfo {
  std::uint32_t world = 0;
  std::string session_prefix;             // shm name prefix (leak sweeps)
  std::string comm_shm;                   // ProcComm segment
  std::vector<std::string> daemon_shms;   // one per memory group
};

std::vector<std::uint8_t> encode_rendezvous_info(const RendezvousInfo& info);
RendezvousInfo decode_rendezvous_info(std::span<const std::uint8_t> payload);

// Host side: binds `socket_path` (recovering stale files), accepts until
// every rank in [0, info.world) has said HELLO, answers each with
// WELCOME. Unlinks the socket on return and on error. Each accepted
// connection must deliver its HELLO within `hello_timeout` (and within
// the overall `timeout`) — a half-open client that connects and goes
// silent is a typed kPeerTimeout, not a parked fd that wedges the whole
// rendezvous until the session deadline.
void rendezvous_host(
    const std::string& socket_path, const RendezvousInfo& info,
    std::chrono::milliseconds timeout,
    std::chrono::milliseconds hello_timeout = std::chrono::milliseconds(
        10'000));

// Rank side: connects (retrying until the host is up), HELLOs, returns
// the decoded WELCOME.
RendezvousInfo rendezvous_client(const std::string& socket_path,
                                 std::uint32_t world, std::uint32_t rank,
                                 std::chrono::milliseconds timeout);

// ---- cross-host (TCP) rendezvous ----------------------------------------

// One simulated host's slice of the world: the contiguous global-rank
// span [begin, end) it runs, and the TCP port its leader (global rank
// `begin`) listens on for the inter-host collective ring.
struct HostSpan {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint16_t leader_port = 0;
};

// Everything a rank needs to join a multi-host session: which span is
// whose, where each leader rings, and which shm segments carry the
// intra-host traffic. Serialized into the WELCOME payload.
struct ClusterMap {
  std::uint32_t world = 0;
  std::string session_prefix;
  std::string bind_host;                  // interface the leader rings use
  std::vector<std::string> host_comm_shms;  // one staging segment per host
  std::vector<std::string> daemon_shms;     // one per memory group
  std::vector<HostSpan> spans;              // one per host, rank-ordered

  std::size_t hosts() const { return spans.size(); }
};

std::vector<std::uint8_t> encode_cluster_map(const ClusterMap& map);
ClusterMap decode_cluster_map(std::span<const std::uint8_t> payload);

// Host side: serves rendezvous on an already-bound TCP listener (the
// launcher binds pre-fork so every child knows the port). Unlike the
// UNIX-socket flavour this must collect *all* HELLOs before answering
// any of them: each leader's HELLO carries its freshly-bound ring port,
// and the map is only complete — and worth WELCOMEing with — once every
// leader has checked in. Rank/world conflicts are typed kRankConflict,
// reported to the offender before the session fails. As with
// rendezvous_host, each connection gets `hello_timeout` to say HELLO so
// a half-open client surfaces as kPeerTimeout instead of parking until
// the session deadline.
void tcp_rendezvous_host(
    int listen_fd, ClusterMap map, std::chrono::milliseconds timeout,
    std::chrono::milliseconds hello_timeout = std::chrono::milliseconds(
        10'000));

// Rank side: dials the rendezvous listener, HELLOs {world, rank,
// leader_port} (leader_port 0 for non-leaders), returns the decoded
// cluster map.
ClusterMap tcp_rendezvous_client(const std::string& host, std::uint16_t port,
                                 std::uint32_t world, std::uint32_t rank,
                                 std::uint16_t leader_port,
                                 std::chrono::milliseconds timeout);

}  // namespace disttgl::dist
