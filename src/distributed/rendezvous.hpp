// Rank rendezvous over a named UNIX socket.
//
// The launcher parent serves; each rank connects, sends
// HELLO{world, rank}, and receives WELCOME carrying the session's shm
// names. Rendezvous doubles as the startup barrier: the host does not
// return until every rank of the world has checked in, so a rank that
// passes rendezvous knows all its peers exist and all segments are
// created. Misuse is typed: a duplicate rank claim is kRankConflict
// (reported to both the host and the offending client), a world-size
// disagreement is kRankConflict too (same class of operator error), and
// binding over a live listener is kAddrInUse while a *stale* socket
// file from a crashed run is silently recovered (probe + unlink —
// socket.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "distributed/socket.hpp"

namespace disttgl::dist {

// Everything a rank needs to join the session. Serialized into the
// WELCOME payload.
struct RendezvousInfo {
  std::uint32_t world = 0;
  std::string session_prefix;             // shm name prefix (leak sweeps)
  std::string comm_shm;                   // ProcComm segment
  std::vector<std::string> daemon_shms;   // one per memory group
};

std::vector<std::uint8_t> encode_rendezvous_info(const RendezvousInfo& info);
RendezvousInfo decode_rendezvous_info(std::span<const std::uint8_t> payload);

// Host side: binds `socket_path` (recovering stale files), accepts until
// every rank in [0, info.world) has said HELLO, answers each with
// WELCOME. Unlinks the socket on return and on error.
void rendezvous_host(const std::string& socket_path,
                     const RendezvousInfo& info,
                     std::chrono::milliseconds timeout);

// Rank side: connects (retrying until the host is up), HELLOs, returns
// the decoded WELCOME.
RendezvousInfo rendezvous_client(const std::string& socket_path,
                                 std::uint32_t world, std::uint32_t rank,
                                 std::chrono::milliseconds timeout);

}  // namespace disttgl::dist
