#include "distributed/rendezvous.hpp"

#include <unistd.h>

#include <utility>

namespace disttgl::dist {
namespace {

// Unlink-on-scope-exit for the rendezvous socket path.
class PathGuard {
 public:
  explicit PathGuard(std::string path) : path_(std::move(path)) {}
  ~PathGuard() { ::unlink(path_.c_str()); }

 private:
  std::string path_;
};

}  // namespace

std::vector<std::uint8_t> encode_rendezvous_info(const RendezvousInfo& info) {
  WireWriter w;
  w.put_u32(info.world);
  w.put_string(info.session_prefix);
  w.put_string(info.comm_shm);
  w.put_u64(info.daemon_shms.size());
  for (const std::string& s : info.daemon_shms) w.put_string(s);
  return w.take();
}

RendezvousInfo decode_rendezvous_info(std::span<const std::uint8_t> payload) {
  WireCursor c(payload);
  RendezvousInfo info;
  info.world = c.get_u32();
  info.session_prefix = c.get_string();
  info.comm_shm = c.get_string();
  const std::uint64_t n = c.get_u64();
  info.daemon_shms.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    info.daemon_shms.push_back(c.get_string());
  return info;
}

void rendezvous_host(const std::string& socket_path,
                     const RendezvousInfo& info,
                     std::chrono::milliseconds timeout) {
  const Deadline deadline = deadline_after(timeout);
  FdHandle listener = unix_listen(socket_path, static_cast<int>(info.world));
  PathGuard guard(socket_path);

  const std::vector<std::uint8_t> welcome = encode_rendezvous_info(info);
  std::vector<bool> seen(info.world, false);
  std::uint32_t arrived = 0;
  while (arrived < info.world) {
    FdHandle conn = accept_conn(listener.get(), deadline);
    Frame hello;
    if (!read_frame(conn.get(), hello, deadline))
      throw_fabric(FabricErrc::kPeerClosed,
                   "rank closed the connection before HELLO");
    if (hello.type != MsgType::kHello)
      throw_fabric(FabricErrc::kBadMagic,
                   "expected HELLO, got frame type " +
                       std::to_string(static_cast<int>(hello.type)));
    WireCursor c(hello.payload);
    const std::uint32_t peer_world = c.get_u32();
    const std::uint32_t rank = c.get_u32();
    if (peer_world != info.world || rank >= info.world || seen[rank]) {
      // Tell the offender what went wrong before failing the session —
      // it is parked in read_frame and would otherwise only see EOF.
      const std::string msg =
          seen.size() > rank && seen[rank]
              ? "rank " + std::to_string(rank) + " already registered"
              : "bad HELLO: world " + std::to_string(peer_world) + " rank " +
                    std::to_string(rank) + " vs world " +
                    std::to_string(info.world);
      WireWriter err;
      err.put_u32(static_cast<std::uint32_t>(FabricErrc::kRankConflict));
      err.put_string(msg);
      write_frame(conn.get(), MsgType::kErrorReport, err.bytes(), deadline);
      throw_fabric(FabricErrc::kRankConflict, msg);
    }
    seen[rank] = true;
    ++arrived;
    write_frame(conn.get(), MsgType::kWelcome, welcome, deadline);
  }
}

RendezvousInfo rendezvous_client(const std::string& socket_path,
                                 std::uint32_t world, std::uint32_t rank,
                                 std::chrono::milliseconds timeout) {
  const Deadline deadline = deadline_after(timeout);
  FdHandle conn = unix_connect(socket_path, deadline);
  WireWriter hello;
  hello.put_u32(world);
  hello.put_u32(rank);
  write_frame(conn.get(), MsgType::kHello, hello.bytes(), deadline);

  Frame reply;
  if (!read_frame(conn.get(), reply, deadline))
    throw_fabric(FabricErrc::kPeerClosed, "host closed before WELCOME");
  if (reply.type == MsgType::kErrorReport) {
    WireCursor c(reply.payload);
    const auto code = static_cast<FabricErrc>(c.get_u32());
    throw_fabric(code, "rendezvous rejected: " + c.get_string());
  }
  if (reply.type != MsgType::kWelcome)
    throw_fabric(FabricErrc::kBadMagic,
                 "expected WELCOME, got frame type " +
                     std::to_string(static_cast<int>(reply.type)));
  return decode_rendezvous_info(reply.payload);
}

}  // namespace disttgl::dist
