#include "distributed/rendezvous.hpp"

#include <unistd.h>

#include <algorithm>
#include <utility>

namespace disttgl::dist {
namespace {

// Unlink-on-scope-exit for the rendezvous socket path.
class PathGuard {
 public:
  explicit PathGuard(std::string path) : path_(std::move(path)) {}
  ~PathGuard() { ::unlink(path_.c_str()); }

 private:
  std::string path_;
};

// Reads one connection's HELLO under its own (shorter) deadline on top
// of the session one: a half-open client that connects and never speaks
// must cost at most hello_timeout, not the whole rendezvous window.
Frame read_hello(int fd, Deadline session_deadline,
                 std::chrono::milliseconds hello_timeout) {
  const Deadline hello_deadline =
      std::min(session_deadline, deadline_after(hello_timeout));
  Frame hello;
  try {
    if (!read_frame(fd, hello, hello_deadline))
      throw_fabric(FabricErrc::kPeerClosed,
                   "rank closed the connection before HELLO");
  } catch (const FabricError& e) {
    if (e.code() == FabricErrc::kPeerTimeout)
      throw_fabric(FabricErrc::kPeerTimeout,
                   "rendezvous: connection sent no HELLO within its "
                   "deadline (half-open client?)");
    throw;
  }
  if (hello.type != MsgType::kHello)
    throw_fabric(FabricErrc::kBadMagic,
                 "expected HELLO, got frame type " +
                     std::to_string(static_cast<int>(hello.type)));
  return hello;
}

}  // namespace

std::vector<std::uint8_t> encode_rendezvous_info(const RendezvousInfo& info) {
  WireWriter w;
  w.put_u32(info.world);
  w.put_string(info.session_prefix);
  w.put_string(info.comm_shm);
  w.put_u64(info.daemon_shms.size());
  for (const std::string& s : info.daemon_shms) w.put_string(s);
  return w.take();
}

RendezvousInfo decode_rendezvous_info(std::span<const std::uint8_t> payload) {
  WireCursor c(payload);
  RendezvousInfo info;
  info.world = c.get_u32();
  info.session_prefix = c.get_string();
  info.comm_shm = c.get_string();
  const std::uint64_t n = c.get_u64();
  info.daemon_shms.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    info.daemon_shms.push_back(c.get_string());
  return info;
}

void rendezvous_host(const std::string& socket_path,
                     const RendezvousInfo& info,
                     std::chrono::milliseconds timeout,
                     std::chrono::milliseconds hello_timeout) {
  const Deadline deadline = deadline_after(timeout);
  FdHandle listener = unix_listen(socket_path, static_cast<int>(info.world));
  PathGuard guard(socket_path);

  const std::vector<std::uint8_t> welcome = encode_rendezvous_info(info);
  std::vector<bool> seen(info.world, false);
  std::uint32_t arrived = 0;
  while (arrived < info.world) {
    FdHandle conn = accept_conn(listener.get(), deadline);
    Frame hello = read_hello(conn.get(), deadline, hello_timeout);
    WireCursor c(hello.payload);
    const std::uint32_t peer_world = c.get_u32();
    const std::uint32_t rank = c.get_u32();
    if (peer_world != info.world || rank >= info.world || seen[rank]) {
      // Tell the offender what went wrong before failing the session —
      // it is parked in read_frame and would otherwise only see EOF.
      const std::string msg =
          seen.size() > rank && seen[rank]
              ? "rank " + std::to_string(rank) + " already registered"
              : "bad HELLO: world " + std::to_string(peer_world) + " rank " +
                    std::to_string(rank) + " vs world " +
                    std::to_string(info.world);
      WireWriter err;
      err.put_u32(static_cast<std::uint32_t>(FabricErrc::kRankConflict));
      err.put_string(msg);
      write_frame(conn.get(), MsgType::kErrorReport, err.bytes(), deadline);
      throw_fabric(FabricErrc::kRankConflict, msg);
    }
    seen[rank] = true;
    ++arrived;
    write_frame(conn.get(), MsgType::kWelcome, welcome, deadline);
  }
}

std::vector<std::uint8_t> encode_cluster_map(const ClusterMap& map) {
  WireWriter w;
  w.put_u32(map.world);
  w.put_string(map.session_prefix);
  w.put_string(map.bind_host);
  w.put_u64(map.host_comm_shms.size());
  for (const std::string& s : map.host_comm_shms) w.put_string(s);
  w.put_u64(map.daemon_shms.size());
  for (const std::string& s : map.daemon_shms) w.put_string(s);
  w.put_u64(map.spans.size());
  for (const HostSpan& span : map.spans) {
    w.put_u32(span.begin);
    w.put_u32(span.end);
    w.put_u32(span.leader_port);
  }
  return w.take();
}

ClusterMap decode_cluster_map(std::span<const std::uint8_t> payload) {
  WireCursor c(payload);
  ClusterMap map;
  map.world = c.get_u32();
  map.session_prefix = c.get_string();
  map.bind_host = c.get_string();
  const std::uint64_t n_comm = c.get_u64();
  map.host_comm_shms.reserve(n_comm);
  for (std::uint64_t i = 0; i < n_comm; ++i)
    map.host_comm_shms.push_back(c.get_string());
  const std::uint64_t n_daemon = c.get_u64();
  map.daemon_shms.reserve(n_daemon);
  for (std::uint64_t i = 0; i < n_daemon; ++i)
    map.daemon_shms.push_back(c.get_string());
  const std::uint64_t n_spans = c.get_u64();
  map.spans.reserve(n_spans);
  for (std::uint64_t i = 0; i < n_spans; ++i) {
    HostSpan span;
    span.begin = c.get_u32();
    span.end = c.get_u32();
    span.leader_port = static_cast<std::uint16_t>(c.get_u32());
    map.spans.push_back(span);
  }
  return map;
}

void tcp_rendezvous_host(int listen_fd, ClusterMap map,
                         std::chrono::milliseconds timeout,
                         std::chrono::milliseconds hello_timeout) {
  const Deadline deadline = deadline_after(timeout);
  std::vector<bool> seen(map.world, false);
  // Connections stay parked until every rank (and so every leader ring
  // port) has arrived — answering early would hand out an incomplete
  // map.
  std::vector<FdHandle> conns(map.world);
  std::uint32_t arrived = 0;
  while (arrived < map.world) {
    FdHandle conn = accept_conn(listen_fd, deadline);
    Frame hello = read_hello(conn.get(), deadline, hello_timeout);
    WireCursor c(hello.payload);
    const std::uint32_t peer_world = c.get_u32();
    const std::uint32_t rank = c.get_u32();
    const std::uint32_t leader_port = c.get_u32();
    if (peer_world != map.world || rank >= map.world || seen[rank]) {
      const std::string msg =
          rank < seen.size() && seen[rank]
              ? "rank " + std::to_string(rank) + " already registered"
              : "bad HELLO: world " + std::to_string(peer_world) + " rank " +
                    std::to_string(rank) + " vs world " +
                    std::to_string(map.world);
      WireWriter err;
      err.put_u32(static_cast<std::uint32_t>(FabricErrc::kRankConflict));
      err.put_string(msg);
      write_frame(conn.get(), MsgType::kErrorReport, err.bytes(), deadline);
      throw_fabric(FabricErrc::kRankConflict, msg);
    }
    seen[rank] = true;
    conns[rank] = std::move(conn);
    if (leader_port != 0) {
      for (HostSpan& span : map.spans)
        if (span.begin == rank)
          span.leader_port = static_cast<std::uint16_t>(leader_port);
    }
    ++arrived;
  }
  // A single-host cluster has no ring, so leaders rightly bind nothing.
  if (map.hosts() > 1)
    for (const HostSpan& span : map.spans)
      if (span.end > span.begin && span.leader_port == 0)
        throw_fabric(FabricErrc::kRankConflict,
                     "leader rank " + std::to_string(span.begin) +
                         " announced no ring port");
  const std::vector<std::uint8_t> welcome = encode_cluster_map(map);
  for (std::uint32_t rank = 0; rank < map.world; ++rank)
    write_frame(conns[rank].get(), MsgType::kWelcome, welcome, deadline);
}

ClusterMap tcp_rendezvous_client(const std::string& host, std::uint16_t port,
                                 std::uint32_t world, std::uint32_t rank,
                                 std::uint16_t leader_port,
                                 std::chrono::milliseconds timeout) {
  const Deadline deadline = deadline_after(timeout);
  FdHandle conn = tcp_connect(host, port, deadline);
  WireWriter hello;
  hello.put_u32(world);
  hello.put_u32(rank);
  hello.put_u32(leader_port);
  write_frame(conn.get(), MsgType::kHello, hello.bytes(), deadline);

  Frame reply;
  if (!read_frame(conn.get(), reply, deadline))
    throw_fabric(FabricErrc::kPeerClosed, "host closed before WELCOME");
  if (reply.type == MsgType::kErrorReport) {
    WireCursor c(reply.payload);
    const auto code = static_cast<FabricErrc>(c.get_u32());
    throw_fabric(code, "rendezvous rejected: " + c.get_string());
  }
  if (reply.type != MsgType::kWelcome)
    throw_fabric(FabricErrc::kBadMagic,
                 "expected WELCOME, got frame type " +
                     std::to_string(static_cast<int>(reply.type)));
  return decode_cluster_map(reply.payload);
}

RendezvousInfo rendezvous_client(const std::string& socket_path,
                                 std::uint32_t world, std::uint32_t rank,
                                 std::chrono::milliseconds timeout) {
  const Deadline deadline = deadline_after(timeout);
  FdHandle conn = unix_connect(socket_path, deadline);
  WireWriter hello;
  hello.put_u32(world);
  hello.put_u32(rank);
  write_frame(conn.get(), MsgType::kHello, hello.bytes(), deadline);

  Frame reply;
  if (!read_frame(conn.get(), reply, deadline))
    throw_fabric(FabricErrc::kPeerClosed, "host closed before WELCOME");
  if (reply.type == MsgType::kErrorReport) {
    WireCursor c(reply.payload);
    const auto code = static_cast<FabricErrc>(c.get_u32());
    throw_fabric(code, "rendezvous rejected: " + c.get_string());
  }
  if (reply.type != MsgType::kWelcome)
    throw_fabric(FabricErrc::kBadMagic,
                 "expected WELCOME, got frame type " +
                     std::to_string(static_cast<int>(reply.type)));
  return decode_rendezvous_info(reply.payload);
}

}  // namespace disttgl::dist
