#include "distributed/launch.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace disttgl::dist {
namespace {

// The forked child's end of its result pipe, published for control
// frames (heartbeats). Set once in child_main before the rank function
// runs; a fork has exactly one rank, so a plain global is enough.
int g_child_control_fd = -1;

// Child side: run the rank function, frame the outcome onto `fd`, and
// _Exit. Never returns. Catches everything — an exception escaping to a
// forked child would unwind into gtest/main machinery cloned from the
// parent and produce duplicate output.
[[noreturn]] void child_main(std::size_t rank, const ProcGroup::RankFn& fn,
                             int fd) {
  g_child_control_fd = fd;
  const Deadline deadline = deadline_after(std::chrono::milliseconds(30'000));
  int exit_code = 0;
  try {
    const std::vector<std::uint8_t> payload = fn(rank);
    write_frame(fd, MsgType::kResult, payload, deadline);
  } catch (const FabricError& e) {
    WireWriter w;
    w.put_u32(static_cast<std::uint32_t>(e.code()));
    w.put_string(e.what());
    try {
      write_frame(fd, MsgType::kErrorReport, w.bytes(), deadline);
    } catch (...) {
    }
    exit_code = 2;
  } catch (const std::exception& e) {
    WireWriter w;
    w.put_u32(static_cast<std::uint32_t>(FabricErrc::kChildFailed));
    w.put_string(e.what());
    try {
      write_frame(fd, MsgType::kErrorReport, w.bytes(), deadline);
    } catch (...) {
    }
    exit_code = 3;
  } catch (...) {
    exit_code = 4;
  }
  ::close(fd);
  ::_Exit(exit_code);
}

}  // namespace

int child_control_fd() { return g_child_control_fd; }

ProcGroup ProcGroup::spawn(std::size_t world, const RankFn& fn) {
  ProcGroup group;
  group.pids_.reserve(world);
  group.result_pipes_.reserve(world);
  // Flush stdio before forking so buffered output is not emitted twice.
  std::fflush(stdout);
  std::fflush(stderr);
  for (std::size_t rank = 0; rank < world; ++rank) {
    // A socketpair, not a pipe: the framed write path speaks send()
    // with MSG_NOSIGNAL, which only sockets support.
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0)
      throw_fabric(FabricErrc::kSocketFailure,
                   std::string("socketpair: ") + std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      // Kill the ranks we already made; partial worlds only hang.
      for (pid_t p : group.pids_) ::kill(p, SIGKILL);
      for (pid_t p : group.pids_) ::waitpid(p, nullptr, 0);
      throw_fabric(FabricErrc::kChildFailed,
                   std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      ::close(fds[0]);
      // Drop the read ends of earlier siblings' pipes inherited across
      // fork — O_CLOEXEC doesn't help without an exec.
      group.result_pipes_.clear();
      child_main(rank, fn, fds[1]);  // noreturn
    }
    ::close(fds[1]);
    group.pids_.push_back(pid);
    group.result_pipes_.emplace_back(fds[0]);
  }
  return group;
}

ProcGroup::~ProcGroup() {
  if (!reaped_ && !pids_.empty()) {
    try {
      wait(std::chrono::milliseconds(5'000));
    } catch (...) {
    }
  }
}

void ProcGroup::kill_rank(std::size_t rank) {
  ::kill(pids_.at(rank), SIGKILL);
}

std::vector<ChildResult> ProcGroup::wait(
    std::chrono::milliseconds timeout,
    std::chrono::milliseconds heartbeat_timeout,
    std::chrono::milliseconds checkpoint_grace) {
  const std::size_t world = pids_.size();
  std::vector<ChildResult> results(world);
  for (std::size_t r = 0; r < world; ++r) results[r].rank = r;
  if (reaped_) return results;

  const Deadline deadline = deadline_after(timeout);
  std::vector<FrameReader> readers(world);
  std::vector<bool> pipe_done(world, false);
  std::vector<bool> got_frame(world, false);
  // Heartbeat supervision: last_seen[r] is meaningful once beating[r] —
  // a rank is held to the cadence only after its first frame, so model
  // construction before the first beat can't trip the timeout.
  const bool supervise = heartbeat_timeout.count() > 0;
  std::vector<bool> beating(world, false);
  std::vector<std::chrono::steady_clock::time_point> last_seen(world);
  // A rank that announced a snapshot write (kCheckpointNote) is allowed
  // to go quiet until grace_until[r]: the save is fsync-bound and stalls
  // its beat loop without the rank being dead or hung. Any later frame
  // (the post-commit note, the next heartbeat) clears the allowance.
  std::vector<std::chrono::steady_clock::time_point> grace_until(
      world, std::chrono::steady_clock::time_point::min());
  bool hb_killed = false;

  // Drain every pipe until EOF (or deadline). A child's frame may be
  // followed by EOF in the same poll round; EOF without a frame means
  // the child died before reporting.
  std::size_t open_pipes = world;
  std::uint8_t buf[4096];
  while (open_pipes > 0 && std::chrono::steady_clock::now() < deadline) {
    std::vector<pollfd> pfds;
    std::vector<std::size_t> pfd_rank;
    for (std::size_t r = 0; r < world; ++r) {
      if (pipe_done[r]) continue;
      pfds.push_back({result_pipes_[r].get(), POLLIN, 0});
      pfd_rank.push_back(r);
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    // Short poll slices while supervising so silence is noticed at a
    // fraction of the heartbeat timeout, not at the 1 s drain cadence.
    const long long slice = supervise ? 50 : 1000;
    const int rc = ::poll(pfds.data(), pfds.size(),
                          static_cast<int>(std::max<long long>(
                              0, std::min<long long>(left.count(), slice))));
    if (rc < 0 && errno != EINTR)
      throw_fabric(FabricErrc::kSocketFailure,
                   std::string("poll: ") + std::strerror(errno));
    if (rc > 0) {
      for (std::size_t k = 0; k < pfds.size(); ++k) {
        if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const std::size_t r = pfd_rank[k];
        const ssize_t n = ::read(pfds[k].fd, buf, sizeof(buf));
        if (n > 0) {
          try {
            readers[r].feed({buf, static_cast<std::size_t>(n)});
            Frame frame;
            while (readers[r].poll(frame)) {
              beating[r] = true;
              last_seen[r] = std::chrono::steady_clock::now();
              grace_until[r] = std::chrono::steady_clock::time_point::min();
              if (frame.type == MsgType::kCheckpointNote &&
                  checkpoint_grace.count() > 0)
                grace_until[r] = last_seen[r] + checkpoint_grace;
              if (frame.type == MsgType::kResult) {
                got_frame[r] = true;
                results[r].ok = true;
                results[r].payload = std::move(frame.payload);
              } else if (frame.type == MsgType::kErrorReport) {
                WireCursor c(frame.payload);
                got_frame[r] = true;
                results[r].ok = false;
                results[r].errc = static_cast<FabricErrc>(c.get_u32());
                results[r].message = c.get_string();
              }
              // kHeartbeat / kCheckpointNote: liveness only, consumed.
            }
          } catch (const FabricError& e) {
            // Garbage on the pipe — classify, stop reading this child.
            got_frame[r] = true;
            results[r].ok = false;
            results[r].errc = e.code();
            results[r].message = e.what();
            pipe_done[r] = true;
            --open_pipes;
          }
        } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
          pipe_done[r] = true;
          --open_pipes;
        }
      }
    }
    if (supervise && !hb_killed) {
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < world; ++r) {
        if (pipe_done[r] || got_frame[r] || !beating[r]) continue;
        if (now - last_seen[r] < heartbeat_timeout) continue;
        if (now < grace_until[r]) continue;  // mid-checkpoint stall
        // A beating rank went silent: dead or hung. Either way the
        // group cannot finish — SIGKILL everyone and let the pipes
        // drain to EOF below.
        results[r].ok = false;
        results[r].errc = FabricErrc::kHeartbeatLost;
        results[r].message =
            "rank went silent for longer than the heartbeat timeout (" +
            std::to_string(heartbeat_timeout.count()) + " ms)";
        got_frame[r] = true;
        hb_killed = true;
      }
      if (hb_killed)
        for (pid_t p : pids_) ::kill(p, SIGKILL);
    }
  }

  // SIGKILL anything still holding its pipe open past the deadline.
  for (std::size_t r = 0; r < world; ++r) {
    if (!pipe_done[r]) {
      ::kill(pids_[r], SIGKILL);
      if (!got_frame[r]) {
        results[r].ok = false;
        results[r].errc = FabricErrc::kPeerTimeout;
        results[r].message = "rank did not report before the launch deadline";
      }
    }
  }

  // Reap. Children whose pipes closed are dead or exiting; the rest
  // just got SIGKILL — a blocking waitpid is bounded.
  for (std::size_t r = 0; r < world; ++r) {
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(pids_[r], &status, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc == pids_[r] && !got_frame[r] && !results[r].ok) {
      if (WIFSIGNALED(status)) {
        results[r].errc = FabricErrc::kChildFailed;
        results[r].message =
            "rank killed by signal " + std::to_string(WTERMSIG(status));
      } else if (WIFEXITED(status)) {
        results[r].errc = FabricErrc::kChildFailed;
        results[r].message =
            "rank exited " + std::to_string(WEXITSTATUS(status)) +
            " without reporting";
      }
    }
  }
  result_pipes_.clear();
  reaped_ = true;
  return results;
}

std::vector<std::vector<std::uint8_t>> disttgl_launch(
    std::size_t world, const ProcGroup::RankFn& fn,
    std::chrono::milliseconds timeout) {
  ProcGroup group = ProcGroup::spawn(world, fn);
  std::vector<ChildResult> results = group.wait(timeout);
  for (const ChildResult& r : results) {
    if (!r.ok)
      throw_fabric(r.errc, "rank " + std::to_string(r.rank) +
                               " failed: " + r.message);
  }
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(world);
  for (ChildResult& r : results) payloads.push_back(std::move(r.payload));
  return payloads;
}

}  // namespace disttgl::dist
