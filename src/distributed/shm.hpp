// POSIX shared-memory segments for the process fabric's data plane.
//
// Ownership is deliberately lopsided: the launcher parent *creates*
// every segment (O_CREAT|O_EXCL, ftruncate, mmap) and is the only
// process that ever unlinks one; ranks *attach* by name read-only of
// the lifecycle (mmap only — their destructor just munmaps). One
// creator/one unlinker means a crashed rank can never leak a segment
// the parent doesn't know about, and the post-test /dev/shm sweep
// (tools/sweep_shm.py + the fabric_shm_sweep CTest cleanup fixture)
// only has to check the session prefix.
//
// Names follow "/disttgl.<pid>.<counter>.<role>" so concurrent test
// runs on one host never collide and a sweep can attribute leftovers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "distributed/fabric_error.hpp"

namespace disttgl::dist {

inline constexpr const char* kShmPrefix = "/disttgl.";

// "/disttgl.<pid>.<counter>" — unique per call within a process.
std::string make_session_prefix();

class ShmSegment {
 public:
  // Parent side: shm_open(O_CREAT|O_EXCL) + ftruncate + mmap, zeroed.
  static ShmSegment create(const std::string& name, std::size_t bytes);
  // Child side: shm_open existing + mmap; size must match what the
  // creator declared (validated via fstat).
  static ShmSegment attach(const std::string& name, std::size_t bytes);

  ShmSegment() = default;
  ~ShmSegment();
  ShmSegment(ShmSegment&& o) noexcept;
  ShmSegment& operator=(ShmSegment&& o) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  void* data() const { return addr_; }
  std::size_t size() const { return bytes_; }
  const std::string& name() const { return name_; }
  bool valid() const { return addr_ != nullptr; }

  template <typename T>
  T* as(std::size_t byte_offset = 0) const {
    return reinterpret_cast<T*>(static_cast<char*>(addr_) + byte_offset);
  }

  // Unmap + (owner only) shm_unlink. Safe to call twice.
  void close();

 private:
  void* addr_ = nullptr;
  std::size_t bytes_ = 0;
  std::string name_;
  bool owner_ = false;
};

// Names under /dev/shm matching `prefix` (leading '/' stripped for the
// directory scan). Used by leak checks.
std::vector<std::string> list_shm(const std::string& prefix);

// shm_unlinks every segment matching `prefix`; returns how many were
// removed. The fault tests call this in teardown and *assert zero* —
// cleanup paths, not the sweep, must reclaim segments.
std::size_t sweep_shm(const std::string& prefix);

}  // namespace disttgl::dist
