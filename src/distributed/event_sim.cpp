#include "distributed/event_sim.hpp"

#include "util/check.hpp"

namespace disttgl::dist {

void EventSim::schedule(SimTime t, std::function<void()> fn) {
  DT_CHECK_GE(t, now_);
  queue_.push(Ev{t, seq_++, std::move(fn)});
}

SimTime EventSim::run() {
  while (!queue_.empty()) {
    // Copy out before pop: the callback may schedule more events.
    Ev ev = std::move(const_cast<Ev&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ev.fn();
  }
  return now_;
}

}  // namespace disttgl::dist
