// Typed errors for the process fabric.
//
// Every failure mode a peer process can inflict — dying mid-collective,
// closing a socket mid-frame, sending garbage, leaving a stale
// rendezvous socket behind — must surface as a FabricError with a
// machine-checkable code, never as a hang or a silent partial result.
// tests/test_fabric_faults.cpp injects each of these and asserts the
// code; the launcher turns a child's FabricError into an error frame on
// the result pipe so the parent can report which rank failed and why.
#pragma once

#include <stdexcept>
#include <string>

namespace disttgl::dist {

enum class FabricErrc {
  kPeerTimeout = 1,  // peer did not arrive/respond within the deadline
  kPeerClosed,       // EOF mid-protocol (peer died or closed the socket)
  kAborted,          // a peer flagged the shared session as failed
  kBadMagic,         // frame does not start with the protocol magic
  kBadVersion,       // protocol version mismatch
  kBadChecksum,      // frame payload corrupted in flight
  kTruncated,        // frame or payload field shorter than declared
  kOversize,         // declared length exceeds the protocol maximum
  kRankConflict,     // two peers claimed the same rank at rendezvous
  kAddrInUse,        // rendezvous socket is owned by a live listener
  kCapacity,         // payload exceeds the preallocated shm slot
  kChildFailed,      // a launched rank exited nonzero / was signaled
  kShmFailure,       // shm_open/ftruncate/mmap failed
  kSocketFailure,    // socket syscall failed (errno-level)
  kInjectedFault,    // fabric.fault chaos knob fired (tests/benches)
  kHeartbeatLost,    // rank stopped heartbeating past the timeout
  kRestartStorm,     // supervisor restart budget exhausted in its window
};

inline const char* fabric_errc_name(FabricErrc c) {
  switch (c) {
    case FabricErrc::kPeerTimeout: return "peer_timeout";
    case FabricErrc::kPeerClosed: return "peer_closed";
    case FabricErrc::kAborted: return "aborted";
    case FabricErrc::kBadMagic: return "bad_magic";
    case FabricErrc::kBadVersion: return "bad_version";
    case FabricErrc::kBadChecksum: return "bad_checksum";
    case FabricErrc::kTruncated: return "truncated";
    case FabricErrc::kOversize: return "oversize";
    case FabricErrc::kRankConflict: return "rank_conflict";
    case FabricErrc::kAddrInUse: return "addr_in_use";
    case FabricErrc::kCapacity: return "capacity";
    case FabricErrc::kChildFailed: return "child_failed";
    case FabricErrc::kShmFailure: return "shm_failure";
    case FabricErrc::kSocketFailure: return "socket_failure";
    case FabricErrc::kInjectedFault: return "injected_fault";
    case FabricErrc::kHeartbeatLost: return "heartbeat_lost";
    case FabricErrc::kRestartStorm: return "restart_storm";
  }
  return "unknown";
}

// Transient vs fatal classification for the tiered recovery ladder
// (docs/ARCHITECTURE.md "Recovery ladder"): a transient code is one a
// fresh connection plus a retry of the in-flight collective can heal —
// the peer is (or may be) still alive, only the stream between us died.
// Everything else (rank conflicts, capacity, aborted sessions, dead
// children) is a property of the run, not the link, and escalates
// straight past the reconnect tier.
inline bool fabric_errc_transient(FabricErrc c) {
  switch (c) {
    case FabricErrc::kPeerTimeout:
    case FabricErrc::kPeerClosed:
    case FabricErrc::kTruncated:
    case FabricErrc::kBadChecksum:
    case FabricErrc::kSocketFailure:
      return true;
    default:
      return false;
  }
}

class FabricError : public std::runtime_error {
 public:
  FabricError(FabricErrc code, const std::string& what)
      : std::runtime_error(std::string("fabric[") + fabric_errc_name(code) +
                           "]: " + what),
        code_(code) {}

  FabricErrc code() const { return code_; }

 private:
  FabricErrc code_;
};

[[noreturn]] inline void throw_fabric(FabricErrc code, const std::string& what) {
  throw FabricError(code, what);
}

}  // namespace disttgl::dist
