#include "distributed/hier_comm.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace disttgl::dist {
namespace {

// kCollective mini-header, little-endian like every wire integer:
//   u32 kind · u32 block_host · u64 seq · u64 body bytes
// The bulk body (doubles / floats) is raw host memory — the simulated
// hosts share one machine, so cross-endian concerns don't arise (and
// put_f32s sets the same precedent for result frames).
constexpr std::size_t kRingHeaderBytes = 24;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_u32(out, static_cast<std::uint32_t>(v));
  append_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return p[0] | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return load_u32(p) | (std::uint64_t{load_u32(p + 4)} << 32);
}

struct RingHeader {
  HierComm::RingMsg kind;
  std::uint32_t block_host;
  std::uint64_t seq;
  std::uint64_t body_len;
};

RingHeader parse_ring_header(const Frame& frame) {
  if (frame.type != MsgType::kCollective)
    throw_fabric(FabricErrc::kBadMagic,
                 "ring stream desync: expected kCollective, got type " +
                     std::to_string(static_cast<int>(frame.type)));
  if (frame.payload.size() < kRingHeaderBytes)
    throw_fabric(FabricErrc::kTruncated,
                 "kCollective frame shorter than its mini-header");
  const std::uint8_t* p = frame.payload.data();
  RingHeader h;
  h.kind = static_cast<HierComm::RingMsg>(load_u32(p));
  h.block_host = load_u32(p + 4);
  h.seq = load_u64(p + 8);
  h.body_len = load_u64(p + 16);
  if (h.body_len != frame.payload.size() - kRingHeaderBytes)
    throw_fabric(FabricErrc::kTruncated,
                 "kCollective body " +
                     std::to_string(frame.payload.size() - kRingHeaderBytes) +
                     " bytes, declared " + std::to_string(h.body_len));
  return h;
}

}  // namespace

std::pair<std::size_t, std::size_t> host_span(std::size_t host,
                                              std::size_t world,
                                              std::size_t hosts) {
  DT_CHECK_LT(host, hosts);
  const std::size_t base = world / hosts;
  const std::size_t rem = world % hosts;
  const std::size_t begin = host * base + std::min(host, rem);
  return {begin, begin + base + (host < rem ? 1 : 0)};
}

std::size_t host_of_rank(std::size_t rank, std::size_t world,
                         std::size_t hosts) {
  DT_CHECK_LT(rank, world);
  for (std::size_t h = 0; h < hosts; ++h) {
    const auto [begin, end] = host_span(h, world, hosts);
    if (rank >= begin && rank < end) return h;
  }
  DT_CHECK_MSG(false, "rank " << rank << " outside every host span");
  return hosts;
}

RingEndpoints connect_ring(int listen_fd, const ClusterMap& map,
                           std::size_t host, Deadline deadline, bool nodelay,
                           const ChaosConfig& chaos, std::uint64_t epoch) {
  RingEndpoints ring;
  const std::size_t hosts = map.hosts();
  if (hosts <= 1) return ring;
  const std::size_t next_host = (host + 1) % hosts;
  const std::size_t prev_host = (host + hosts - 1) % hosts;

  // Dial the successor first: the kernel backlog completes the connect
  // even while the peer is itself dialing, so no accept ordering can
  // deadlock the ring.
  ring.next = ChaosEndpoint(
      TcpEndpoint(tcp_connect(map.bind_host,
                              map.spans[next_host].leader_port, deadline,
                              nodelay)),
      chaos, host);
  std::vector<std::uint8_t> hs;
  append_u32(hs, static_cast<std::uint32_t>(HierComm::RingMsg::kHandshake));
  append_u32(hs, static_cast<std::uint32_t>(host));
  append_u64(hs, epoch);
  append_u64(hs, 0);
  ring.next.send(MsgType::kCollective, hs, deadline);

  for (;;) {
    FdHandle conn = accept_conn(listen_fd, deadline);
    if (nodelay) tcp_set_nodelay(conn.get());
    ring.prev = ChaosEndpoint(TcpEndpoint(std::move(conn)));
    Frame frame;
    if (!ring.prev.recv(frame, deadline))
      throw_fabric(FabricErrc::kPeerClosed,
                   "ring predecessor closed before its handshake");
    const RingHeader h = parse_ring_header(frame);
    if (h.kind != HierComm::RingMsg::kHandshake || h.block_host != prev_host)
      throw_fabric(FabricErrc::kRankConflict,
                   "ring mis-wired: host " + std::to_string(host) +
                       " expected predecessor " + std::to_string(prev_host) +
                       ", got host " + std::to_string(h.block_host));
    if (h.seq < epoch) {
      // Leftover dial from an abandoned reconnect attempt at an earlier
      // collective — drop it and wait for the live one.
      ring.prev.close();
      continue;
    }
    if (h.seq > epoch)
      throw_fabric(FabricErrc::kAborted,
                   "ring epoch mismatch: predecessor host " +
                       std::to_string(prev_host) + " reconnecting at seq " +
                       std::to_string(h.seq) + ", we are at seq " +
                       std::to_string(epoch) +
                       " — collective state diverged, restart required");
    return ring;
  }
}

HierComm::Topology HierComm::topology_for(std::size_t rank, std::size_t world,
                                          std::size_t hosts) {
  Topology t;
  t.world = world;
  t.hosts = hosts;
  t.host = host_of_rank(rank, world, hosts);
  const auto [begin, end] = host_span(t.host, world, hosts);
  t.global_rank = rank;
  t.local_rank = rank - begin;
  t.local_world = end - begin;
  return t;
}

HierComm::HierComm(ProcComm local, Topology topo, RingEndpoints ring,
                   std::chrono::milliseconds timeout)
    : Comm(topo.world, local.opts_),
      local_(std::move(local)),
      topo_(topo),
      ring_(std::move(ring)),
      timeout_(timeout) {
  DT_CHECK_EQ(local_.ranks(), topo_.local_world);
  const bool needs_ring = topo_.hosts > 1 && topo_.local_rank == 0;
  DT_CHECK_MSG(ring_.next.valid() == needs_ring &&
                   ring_.prev.valid() == needs_ring,
               "ring endpoints must be connected exactly on multi-host "
               "leaders (host "
                   << topo_.host << ", local rank " << topo_.local_rank
                   << ")");
}

void HierComm::enable_reconnect(ReconnectPolicy policy) {
  DT_CHECK_MSG(policy.listener.valid(),
               "reconnect policy needs the live ring listener");
  reconnect_ = std::move(policy);
}

void HierComm::redial_ring(std::size_t attempt) {
  // Close both streams first so the neighbours' blocked ring I/O fails
  // fast (transient) and they enter their own re-dial — H=2 leaders
  // converge on retrying the same seq; larger rings that diverged are
  // caught by the handshake's epoch check.
  ring_.next.close();
  ring_.prev.close();

  const RetryConfig& retry = reconnect_->retry;
  const std::uint64_t base = std::min<std::uint64_t>(
      retry.backoff_ms << std::min<std::size_t>(attempt, 20),
      retry.backoff_cap_ms);
  if (base > 1) {
    // Deterministic jitter into [base/2, base]: leaders that failed
    // together de-synchronize their re-dials without losing replay.
    Rng jitter(reconnect_->jitter_seed ^ (seq_ * 0x9e3779b97f4a7c15ULL) ^
               attempt);
    std::this_thread::sleep_for(std::chrono::milliseconds(
        base / 2 + jitter.uniform_int(base / 2 + 1)));
  } else if (base == 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ChaosConfig chaos = reconnect_->chaos;
  chaos.reset_at_byte = 0;  // the injected reset models ONE transient fault
  ring_ = connect_ring(reconnect_->listener.get(), reconnect_->map,
                       topo_.host, deadline_after(timeout_),
                       reconnect_->nodelay, chaos, seq_);
}

void HierComm::run_leader_phase(void (HierComm::*phase)(std::size_t),
                                std::size_t size) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      (this->*phase)(size);
      return;
    } catch (const FabricError& e) {
      // kBadMagic here is a ring stream desync (duplicate/garbled
      // frame): a fresh stream plus the epoch-checked phase retry heals
      // it exactly like a torn connection, so it rides the same tier.
      const bool recoverable = fabric_errc_transient(e.code()) ||
                               e.code() == FabricErrc::kBadMagic;
      if (!reconnect_ || !recoverable ||
          attempt >= reconnect_->retry.max_attempts)
        throw;
      WallTimer timer;
      redial_ring(attempt);
      ++reconnects_;
      reconnect_seconds_ += timer.seconds();
    }
  }
}

void HierComm::send_ring(RingMsg kind, std::size_t block_host,
                         std::span<const std::uint8_t> body,
                         Deadline deadline) {
  body_.clear();
  append_u32(body_, static_cast<std::uint32_t>(kind));
  append_u32(body_, static_cast<std::uint32_t>(block_host));
  append_u64(body_, seq_);
  append_u64(body_, body.size());
  body_.insert(body_.end(), body.begin(), body.end());
  ring_.next.send(MsgType::kCollective, body_, deadline);
}

std::span<const std::uint8_t> HierComm::recv_ring(RingMsg kind,
                                                  std::size_t expect_host,
                                                  Deadline deadline) {
  if (!ring_.prev.recv(frame_, deadline))
    throw_fabric(FabricErrc::kPeerClosed,
                 "ring predecessor closed mid-collective");
  const RingHeader h = parse_ring_header(frame_);
  if (h.kind != kind || h.seq != seq_ || h.block_host != expect_host)
    throw_fabric(FabricErrc::kBadMagic,
                 "ring stream desync: got {kind " +
                     std::to_string(static_cast<int>(h.kind)) + ", host " +
                     std::to_string(h.block_host) + ", seq " +
                     std::to_string(h.seq) + "}, expected {kind " +
                     std::to_string(static_cast<int>(kind)) + ", host " +
                     std::to_string(expect_host) + ", seq " +
                     std::to_string(seq_) + "}");
  return {frame_.payload.data() + kRingHeaderBytes,
          static_cast<std::size_t>(h.body_len)};
}

void HierComm::owned_ranges(
    std::size_t h, std::size_t size,
    std::vector<std::pair<std::size_t, std::size_t>>& out) const {
  out.clear();
  const auto [begin, end] = host_span(h, topo_.world, topo_.hosts);
  const std::size_t chunk = chunk_elems_for(size);
  const std::size_t num_chunks = num_chunks_for(size);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t owner = c % ranks_;
    if (owner < begin || owner >= end) continue;
    const std::size_t lo = c * chunk;
    out.emplace_back(lo, std::min(lo + chunk, size));
  }
}

// The left fold over global ranks, distributed: host 0 starts the
// double accumulator at zero, every host folds its local staged rows
// one rank at a time (local order == contiguous global order), the last
// host rounds to float means — the identical arithmetic, in the
// identical order, as ThreadComm's per-element loop.
void HierComm::leader_reduce_broadcast(std::size_t size) {
  const Deadline deadline = deadline_after(timeout_);
  const std::size_t hosts = topo_.hosts;
  const std::size_t stride = local_.capacity();
  const float* staged = local_.staged_;
  float* result = local_.result_;

  acc_.resize(size);
  if (topo_.host == 0) {
    std::fill(acc_.begin(), acc_.end(), 0.0);
  } else {
    const auto body = recv_ring(RingMsg::kReduce, topo_.host - 1, deadline);
    DT_CHECK_MSG(body.size() == size * sizeof(double),
                 "cross-host allreduce size mismatch: host "
                     << topo_.host - 1 << " sent " << body.size()
                     << " bytes, expected " << size * sizeof(double));
    if (size > 0) std::memcpy(acc_.data(), body.data(), body.size());
  }
  for (std::size_t r = 0; r < topo_.local_world; ++r) {
    const float* row = staged + r * stride;
    for (std::size_t i = 0; i < size; ++i)
      acc_[i] += static_cast<double>(row[i]);
  }

  if (topo_.host + 1 < hosts) {
    send_ring(RingMsg::kReduce, topo_.host,
              {reinterpret_cast<const std::uint8_t*>(acc_.data()),
               size * sizeof(double)},
              deadline);
    // The float means ring back from the last host (which alone holds
    // the completed fold), origin-tagged so a desynced ring fails typed.
    const auto body = recv_ring(RingMsg::kBroadcast, hosts - 1, deadline);
    DT_CHECK_MSG(body.size() == size * sizeof(float),
                 "cross-host broadcast size mismatch");
    if (size > 0) std::memcpy(result, body.data(), body.size());
    // Forward until the hop before the origin: hosts 0..H-3 relay.
    if (topo_.host + 1 < hosts - 1)
      send_ring(RingMsg::kBroadcast, hosts - 1, body, deadline);
  } else {
    const double inv = 1.0 / static_cast<double>(ranks_);
    for (std::size_t i = 0; i < size; ++i)
      result[i] = static_cast<float>(acc_[i] * inv);
    if (hosts > 1)
      send_ring(RingMsg::kBroadcast, topo_.host,
                {reinterpret_cast<const std::uint8_t*>(result),
                 size * sizeof(float)},
                deadline);
  }
}

// Ring allgather of the per-host stepped-parameter blocks: at step s a
// leader forwards the block it most recently holds and receives the
// next one from its predecessor. Host 0 receives before sending, which
// breaks the all-sending cycle a bounded socket buffer could deadlock.
void HierComm::leader_allgather_params(std::size_t size) {
  const Deadline deadline = deadline_after(timeout_);
  const std::size_t hosts = topo_.hosts;
  float* result = local_.result_;

  const auto pack = [&](std::size_t h) {
    owned_ranges(h, size, ranges_);
    block_.clear();
    for (const auto& [lo, hi] : ranges_)
      block_.insert(block_.end(), result + lo, result + hi);
    send_ring(RingMsg::kGather, h,
              {reinterpret_cast<const std::uint8_t*>(block_.data()),
               block_.size() * sizeof(float)},
              deadline);
  };
  const auto unpack = [&](std::size_t h) {
    const auto body = recv_ring(RingMsg::kGather, h, deadline);
    owned_ranges(h, size, ranges_);
    std::size_t expect = 0;
    for (const auto& [lo, hi] : ranges_) expect += hi - lo;
    DT_CHECK_MSG(body.size() == expect * sizeof(float),
                 "cross-host allgather size mismatch for host " << h);
    const auto* src = reinterpret_cast<const float*>(body.data());
    for (const auto& [lo, hi] : ranges_) {
      std::memcpy(result + lo, src, (hi - lo) * sizeof(float));
      src += hi - lo;
    }
  };

  for (std::size_t s = 0; s + 1 < hosts; ++s) {
    const std::size_t send_host = (topo_.host + hosts - s) % hosts;
    const std::size_t recv_host = (topo_.host + hosts - s - 1) % hosts;
    if (topo_.host == 0) {
      unpack(recv_host);
      pack(send_host);
    } else {
      pack(send_host);
      unpack(recv_host);
    }
  }
}

void HierComm::allreduce_mean(std::size_t rank, std::span<float> data) {
  DT_CHECK_EQ(rank, topo_.global_rank);
  if (ranks_ == 1) return;
  const std::size_t size = data.size();
  local_.reserve(size);  // typed kCapacity on overflow; never grows
  const std::size_t stride = local_.capacity();
  ++seq_;

  // Phase 1: deposit the contribution in this rank's local staging row.
  local_.sizes_[topo_.local_rank] = size;
  if (size > 0)
    std::memcpy(local_.staged_ + topo_.local_rank * stride, data.data(),
                size * sizeof(float));
  if (topo_.global_rank == 0) local_.account_raw(1, ring_bytes(size));
  local_.barrier_wait(topo_.local_rank);

  // Phase 2: the leader runs the cross-host fold and lands the float
  // means in the shared result row. Its receipt of the broadcast
  // transitively proves every host contributed, so the collective is a
  // *global* synchronization point even for empty payloads (which is
  // what Comm::barrier leans on across the checkpoint protocol).
  if (is_leader()) {
    local_.check_uniform_size(topo_.local_rank, size);
    try {
      run_leader_phase(&HierComm::leader_reduce_broadcast, size);
    } catch (...) {
      // Fail the followers fast (kAborted) instead of letting them wait
      // out their own barrier deadline on a ring that is already dead.
      local_.abort_session();
      throw;
    }
  }
  local_.barrier_wait(topo_.local_rank);

  // Phase 3: everyone copies the means out. No closing barrier — the
  // result row is only rewritten after every local rank has passed the
  // *next* call's phase-1 barrier, i.e. finished this copy.
  if (size > 0)
    std::memcpy(data.data(), local_.result_, size * sizeof(float));
}

void HierComm::allreduce_step(std::size_t rank, std::span<float> grads,
                              std::span<float> params, ChunkStepFn fn,
                              void* ctx) {
  DT_CHECK_EQ(rank, topo_.global_rank);
  DT_CHECK_EQ(grads.size(), params.size());
  const std::size_t size = grads.size();
  if (ranks_ == 1) {
    step_single_rank(grads, fn, ctx);
    return;
  }
  local_.reserve(size);
  const std::size_t stride = local_.capacity();
  const std::size_t chunk = chunk_elems_for(size);
  const std::size_t num_chunks = num_chunks_for(size);
  ++seq_;

  // Phase 1: deposit gradients.
  local_.sizes_[topo_.local_rank] = size;
  if (size > 0)
    std::memcpy(local_.staged_ + topo_.local_rank * stride, grads.data(),
                size * sizeof(float));
  if (topo_.global_rank == 0) local_.account_raw(1, ring_bytes(size));
  local_.barrier_wait(topo_.local_rank);

  // Phase 2: leader chain — result row becomes the full mean gradient.
  if (is_leader()) {
    local_.check_uniform_size(topo_.local_rank, size);
    try {
      run_leader_phase(&HierComm::leader_reduce_broadcast, size);
    } catch (...) {
      local_.abort_session();
      throw;
    }
  }
  local_.barrier_wait(topo_.local_rank);

  // Phase 3: every rank takes the means and re-derives the global
  // squared norm: per-chunk partial sums in double, folded in chunk
  // order — the identical arithmetic ThreadComm's owners publish via
  // norms_[], so the clipping decision is fabric-independent. The
  // barrier below keeps phase-4 result-row writes from racing this
  // read.
  if (size > 0)
    std::memcpy(grads.data(), local_.result_, size * sizeof(float));
  double sq = 0.0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    double partial = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
      partial += static_cast<double>(grads[i]) * grads[i];
    sq += partial;
  }
  local_.barrier_wait(topo_.local_rank);

  // Phase 4: step the chunks this *global* rank owns, publish the
  // updated parameters to the result row.
  for (std::size_t c = topo_.global_rank; c < num_chunks; c += ranks_) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    fn(ctx, lo, hi, sq);
    std::memcpy(local_.result_ + lo, params.data() + lo,
                (hi - lo) * sizeof(float));
  }
  local_.barrier_wait(topo_.local_rank);

  // Phase 5: leaders exchange the per-host stepped blocks, completing
  // every host's result row.
  if (is_leader() && topo_.hosts > 1) {
    try {
      run_leader_phase(&HierComm::leader_allgather_params, size);
    } catch (...) {
      local_.abort_session();
      throw;
    }
  }
  local_.barrier_wait(topo_.local_rank);

  // Phase 6: allgather — take every chunk this rank didn't step.
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (c % ranks_ == topo_.global_rank) continue;
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, size);
    std::memcpy(params.data() + lo, local_.result_ + lo,
                (hi - lo) * sizeof(float));
  }
}

}  // namespace disttgl::dist
