#include "distributed/throughput_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace disttgl::dist {

namespace {

// Host-DRAM time for a row-gather of `bytes`, with `concurrent` streams
// sharing the bus and the random-access derate applied.
double gather_seconds(const FabricSpec& f, const SystemConstants& c,
                      double bytes, std::size_t concurrent) {
  const double bw =
      f.host_mem_gbps * 1e9 * c.random_access_efficiency / concurrent;
  return bytes / bw;
}

double pcie_roundtrip_seconds(const FabricSpec& f, double bytes) {
  return 2.0 * f.pcie_latency_us * 1e-6 + bytes / (f.pcie_gbps * 1e9);
}

}  // namespace

ThroughputEstimate estimate_throughput(SystemKind system, const FabricSpec& fabric,
                                       const IterationProfile& p,
                                       const ParallelPlan& plan,
                                       const SystemConstants& c) {
  DT_CHECK_GT(p.local_batch, 0u);
  DT_CHECK_GE(plan.k, plan.machines);  // memory copies never span machines
  const std::size_t n = plan.total_gpus();
  DT_CHECK_GT(n, 0u);

  ThroughputEstimate est;

  // Shared stage costs.
  const double t_gpu =
      gpu_seconds(fabric, p.gpu_flops) +
      pcie_roundtrip_seconds(fabric,
                             p.mem_read_bytes + p.feature_bytes + p.fetch_bytes);
  const double t_fetch = disk_seconds(fabric, static_cast<std::size_t>(p.fetch_bytes));
  const double t_slice = gather_seconds(fabric, c, p.feature_bytes, 1);
  const double mem_bytes = p.mem_read_bytes + p.mem_write_bytes;
  const double t_sync = allreduce_seconds(
      fabric, static_cast<std::size_t>(p.weight_bytes), n, plan.machines);

  switch (system) {
    case SystemKind::kTGN: {
      // Strictly serial reference implementation, single GPU only.
      DT_CHECK_EQ(n, 1u);
      const double t_mem = gather_seconds(fabric, c, mem_bytes, 1);
      est.gpu_seconds = t_gpu * c.tgn_serial_multiplier;
      est.memory_seconds = t_mem * c.tgn_serial_multiplier;
      est.fetch_seconds = (t_fetch + t_slice) * c.tgn_serial_multiplier;
      est.sync_seconds = 0.0;
      est.overhead_seconds = c.tgn_overhead_s;
      est.iteration_seconds = est.gpu_seconds + est.memory_seconds +
                              est.fetch_seconds + est.overhead_seconds;
      break;
    }
    case SystemKind::kTGL: {
      // Single machine only; one shared memory copy. All n trainers'
      // memory operations serialize through it (lock + IPC per trainer).
      DT_CHECK_EQ(plan.machines, 1u);
      DT_CHECK_EQ(plan.k, 1u);
      const double t_mem_serialized =
          static_cast<double>(n) *
          (gather_seconds(fabric, c, mem_bytes, 1) + c.tgl_memop_overhead_s);
      // Sampling overlaps with compute (TGL's parallel samplers); feature
      // slicing does not.
      est.gpu_seconds = std::max(t_gpu, t_fetch);
      est.memory_seconds = t_mem_serialized;
      est.fetch_seconds = t_slice;
      est.sync_seconds = t_sync;
      est.overhead_seconds = c.tgl_overhead_s;
      est.iteration_seconds = est.gpu_seconds + est.memory_seconds +
                              est.fetch_seconds + est.sync_seconds +
                              est.overhead_seconds;
      break;
    }
    case SystemKind::kDistTGL: {
      // Per-round group traffic: the i trainers starting a global batch
      // read and write through their group's daemon; the k/machines
      // daemons co-located on one machine share the DRAM bus, and their
      // interleaved random gathers additionally thrash each other's
      // cached rows (penalty ∝ payload × other daemons).
      const std::size_t daemons_per_machine =
          std::max<std::size_t>(1, plan.k / plan.machines);
      const double per_daemon_bytes = static_cast<double>(plan.i) * mem_bytes;
      const double contention =
          1.0 + per_daemon_bytes / c.daemon_cache_scale_bytes *
                    static_cast<double>(daemons_per_machine - 1);
      const double t_daemon_round =
          c.daemon_passes * per_daemon_bytes *
          static_cast<double>(daemons_per_machine) * contention /
          (fabric.host_mem_gbps * 1e9 * c.random_access_efficiency);
      // Prefetcher hides disk + slicing j iterations ahead; the daemon
      // overlaps memory ops with compute, so the iteration critical path
      // is the max of the three streams, plus the weight allreduce.
      const double overlapped =
          std::max({t_gpu, t_daemon_round, t_fetch + t_slice});
      est.gpu_seconds = t_gpu;
      est.memory_seconds = t_daemon_round;
      est.fetch_seconds = t_fetch + t_slice;
      est.sync_seconds = t_sync;
      est.overhead_seconds = c.disttgl_overhead_s;
      est.iteration_seconds =
          overlapped + est.sync_seconds + est.overhead_seconds;
      break;
    }
  }

  const double global_events =
      static_cast<double>(n) * static_cast<double>(p.local_batch);
  est.events_per_second = global_events / est.iteration_seconds;
  est.per_gpu_events_per_second = est.events_per_second / static_cast<double>(n);
  return est;
}

}  // namespace disttgl::dist
