#include "distributed/wire.hpp"

#include <cstring>

namespace disttgl::dist {
namespace {

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint32_t{p[1]} << 8));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return p[0] | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

}  // namespace

std::uint32_t wire_checksum(std::span<const std::uint8_t> payload) {
  std::uint32_t h = 0x811c9dc5u;  // FNV-1a offset basis
  for (std::uint8_t b : payload) {
    h ^= b;
    h *= 0x01000193u;  // FNV prime
  }
  return h;
}

void encode_frame(MsgType type, std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>& out) {
  if (payload.size() > kWireMaxPayload)
    throw_fabric(FabricErrc::kOversize,
                 "encode_frame: payload " + std::to_string(payload.size()) +
                     " exceeds max " + std::to_string(kWireMaxPayload));
  out.reserve(out.size() + kWireHeaderBytes + payload.size());
  append_u32(out, kWireMagic);
  append_u16(out, kWireVersion);
  append_u16(out, static_cast<std::uint16_t>(type));
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  append_u32(out, wire_checksum(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return;  // keep draining input; poll() rethrows
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameReader::compact() {
  // Reclaim consumed prefix once it dominates the buffer, so a
  // long-lived connection doesn't grow without bound while staying
  // amortized O(1) per byte.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

bool FrameReader::poll(Frame& out) {
  if (poisoned_) throw *poisoned_;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kWireHeaderBytes) return false;
  const std::uint8_t* h = buffer_.data() + consumed_;

  // Validate the header *before* trusting the length field. A bad magic
  // or version means the stream is garbage from here on — poison, don't
  // resynchronize (resync heuristics are how parsers get confused into
  // accepting attacker-framed data).
  const std::uint32_t magic = load_u32(h);
  if (magic != kWireMagic) {
    poisoned_.emplace(FabricErrc::kBadMagic,
                      "frame magic 0x" + std::to_string(magic));
    throw *poisoned_;
  }
  const std::uint16_t version = load_u16(h + 4);
  if (version != kWireVersion) {
    poisoned_.emplace(FabricErrc::kBadVersion,
                      "frame version " + std::to_string(version));
    throw *poisoned_;
  }
  const std::uint32_t len = load_u32(h + 8);
  if (len > kWireMaxPayload) {
    poisoned_.emplace(FabricErrc::kOversize,
                      "declared payload " + std::to_string(len));
    throw *poisoned_;
  }
  if (avail < kWireHeaderBytes + len) return false;  // wait for more bytes

  const std::uint8_t* payload = h + kWireHeaderBytes;
  const std::uint32_t declared_sum = load_u32(h + 12);
  const std::uint32_t actual_sum = wire_checksum({payload, len});
  if (declared_sum != actual_sum) {
    poisoned_.emplace(FabricErrc::kBadChecksum,
                      "checksum mismatch: declared 0x" +
                          std::to_string(declared_sum) + " actual 0x" +
                          std::to_string(actual_sum));
    throw *poisoned_;
  }

  out.type = static_cast<MsgType>(load_u16(h + 6));
  out.payload.assign(payload, payload + len);
  consumed_ += kWireHeaderBytes + len;
  compact();
  return true;
}

// ---- WireWriter ----------------------------------------------------------

void WireWriter::put_u32(std::uint32_t v) { append_u32(data_, v); }

void WireWriter::put_u64(std::uint64_t v) {
  append_u32(data_, static_cast<std::uint32_t>(v));
  append_u32(data_, static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::put_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void WireWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  put_u64(bytes.size());
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

void WireWriter::put_string(const std::string& s) {
  put_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void WireWriter::put_f32s(std::span<const float> v) {
  put_u64(v.size());
  const auto* raw = reinterpret_cast<const std::uint8_t*>(v.data());
  data_.insert(data_.end(), raw, raw + v.size() * sizeof(float));
}

void WireWriter::put_u32s(std::span<const std::uint32_t> v) {
  put_u64(v.size());
  const auto* raw = reinterpret_cast<const std::uint8_t*>(v.data());
  data_.insert(data_.end(), raw, raw + v.size() * sizeof(std::uint32_t));
}

// ---- WireCursor ----------------------------------------------------------

void WireCursor::need(std::size_t n) const {
  if (data_.size() - pos_ < n)
    throw_fabric(FabricErrc::kTruncated,
                 "payload field needs " + std::to_string(n) + " bytes, " +
                     std::to_string(data_.size() - pos_) + " remain");
}

std::uint32_t WireCursor::get_u32() {
  need(4);
  const std::uint32_t v = load_u32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t WireCursor::get_u64() {
  const std::uint64_t lo = get_u32();
  const std::uint64_t hi = get_u32();
  return lo | (hi << 32);
}

double WireCursor::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::uint8_t> WireCursor::get_bytes() {
  const std::uint64_t n = get_u64();
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string WireCursor::get_string() {
  const std::uint64_t n = get_u64();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::vector<float> WireCursor::get_f32s() {
  const std::uint64_t count = get_u64();
  // Guard count*4 overflow before the bounds check.
  if (count > data_.size()) throw_fabric(FabricErrc::kTruncated, "f32 count");
  need(count * sizeof(float));
  std::vector<float> out(count);
  std::memcpy(out.data(), data_.data() + pos_, count * sizeof(float));
  pos_ += count * sizeof(float);
  return out;
}

void WireCursor::get_f32s_into(std::vector<float>& out) {
  const std::uint64_t count = get_u64();
  if (count > data_.size()) throw_fabric(FabricErrc::kTruncated, "f32 count");
  need(count * sizeof(float));
  out.resize(count);
  std::memcpy(out.data(), data_.data() + pos_, count * sizeof(float));
  pos_ += count * sizeof(float);
}

void WireCursor::get_u32s_into(std::vector<std::uint32_t>& out) {
  const std::uint64_t count = get_u64();
  if (count > data_.size()) throw_fabric(FabricErrc::kTruncated, "u32 count");
  need(count * sizeof(std::uint32_t));
  out.resize(count);
  std::memcpy(out.data(), data_.data() + pos_, count * sizeof(std::uint32_t));
  pos_ += count * sizeof(std::uint32_t);
}

}  // namespace disttgl::dist
