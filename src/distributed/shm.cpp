#include "distributed/shm.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace disttgl::dist {
namespace {

[[noreturn]] void throw_shm(const std::string& op, const std::string& name) {
  throw_fabric(FabricErrc::kShmFailure,
               op + " " + name + ": " + std::strerror(errno));
}

std::atomic<std::uint32_t> g_session_counter{0};

}  // namespace

std::string make_session_prefix() {
  return std::string(kShmPrefix) + std::to_string(::getpid()) + "." +
         std::to_string(g_session_counter.fetch_add(1));
}

ShmSegment ShmSegment::create(const std::string& name, std::size_t bytes) {
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) throw_shm("shm_open(create)", name);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw_shm("ftruncate", name);
  }
  void* addr =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // mapping keeps the segment alive
  if (addr == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw_shm("mmap", name);
  }
  ShmSegment seg;
  seg.addr_ = addr;
  seg.bytes_ = bytes;
  seg.name_ = name;
  seg.owner_ = true;
  return seg;
}

ShmSegment ShmSegment::attach(const std::string& name, std::size_t bytes) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) throw_shm("shm_open(attach)", name);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) < bytes) {
    ::close(fd);
    throw_fabric(FabricErrc::kShmFailure,
                 "attach " + name + ": segment is " +
                     std::to_string(st.st_size) + " bytes, need " +
                     std::to_string(bytes));
  }
  void* addr =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) throw_shm("mmap", name);
  ShmSegment seg;
  seg.addr_ = addr;
  seg.bytes_ = bytes;
  seg.name_ = name;
  seg.owner_ = false;
  return seg;
}

ShmSegment::~ShmSegment() { close(); }

ShmSegment::ShmSegment(ShmSegment&& o) noexcept
    : addr_(std::exchange(o.addr_, nullptr)),
      bytes_(std::exchange(o.bytes_, 0)),
      name_(std::move(o.name_)),
      owner_(std::exchange(o.owner_, false)) {}

ShmSegment& ShmSegment::operator=(ShmSegment&& o) noexcept {
  if (this != &o) {
    close();
    addr_ = std::exchange(o.addr_, nullptr);
    bytes_ = std::exchange(o.bytes_, 0);
    name_ = std::move(o.name_);
    owner_ = std::exchange(o.owner_, false);
  }
  return *this;
}

void ShmSegment::close() {
  if (addr_ != nullptr) {
    ::munmap(addr_, bytes_);
    addr_ = nullptr;
  }
  if (owner_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
    owner_ = false;
  }
  name_.clear();
  bytes_ = 0;
}

std::vector<std::string> list_shm(const std::string& prefix) {
  std::vector<std::string> out;
  // shm names map to /dev/shm entries without the leading '/'.
  const std::string bare =
      prefix.empty() || prefix[0] != '/' ? prefix : prefix.substr(1);
  DIR* dir = ::opendir("/dev/shm");
  if (dir == nullptr) return out;
  while (dirent* ent = ::readdir(dir)) {
    const std::string name(ent->d_name);
    if (name.rfind(bare, 0) == 0) out.push_back("/" + name);
  }
  ::closedir(dir);
  return out;
}

std::size_t sweep_shm(const std::string& prefix) {
  std::size_t removed = 0;
  for (const std::string& name : list_shm(prefix))
    if (::shm_unlink(name.c_str()) == 0) ++removed;
  return removed;
}

}  // namespace disttgl::dist
