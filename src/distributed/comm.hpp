// Functional in-process collective for trainer threads.
//
// Plays the role NCCL plays in the paper: synchronous gradient averaging
// across trainers. The implementation is a shared accumulation buffer
// bracketed by sense-reversing barriers — semantically identical to an
// allreduce (every rank leaves with the mean), with logical traffic
// accounted per the ring algorithm so Table 1's "synchronization across
// trainers" row can be measured rather than asserted.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "util/barrier.hpp"

namespace disttgl::dist {

class ThreadComm {
 public:
  explicit ThreadComm(std::size_t ranks);

  std::size_t ranks() const { return ranks_; }

  // Replace `data` on every rank with the elementwise mean across ranks.
  // All ranks must call with equally-sized spans. Blocking.
  void allreduce_mean(std::size_t rank, std::span<float> data);

  // Logical bytes a ring allreduce would have moved so far (all calls).
  std::uint64_t logical_bytes() const { return logical_bytes_.load(); }
  std::uint64_t num_allreduces() const { return num_calls_.load(); }

 private:
  std::size_t ranks_;
  SpinBarrier barrier_;
  std::vector<BarrierToken> tokens_;
  // Per-rank staging rows; reduced in fixed rank order for determinism.
  std::vector<float> staged_;
  std::size_t stride_ = 0;
  std::atomic<std::uint64_t> logical_bytes_{0};
  std::atomic<std::uint64_t> num_calls_{0};
};

}  // namespace disttgl::dist
