// Chunked, allocation-free collective for trainers — the seam between
// the in-process (thread) and multi-process (shm) transport fabrics.
//
// Plays the role NCCL plays in the paper: synchronous gradient averaging
// across trainers. The payload is partitioned into fixed-size chunks,
// each owned by one rank; an allreduce is a reduce-scatter (each rank
// reduces only the chunks it owns, in fixed rank order, so results are
// bitwise deterministic regardless of thread/process count or arrival
// order) followed by an allgather from a shared result buffer. Per-rank
// work is O(size), staging is persistent and sized once (reserve()), so
// steady-state calls never touch the allocator, and logical traffic is
// accounted per the ring algorithm so Table 1's "synchronization across
// trainers" row can be measured rather than asserted.
//
// allreduce_step() is the optional fused allreduce→optimizer form: after
// the reduce-scatter each rank steps *its owned chunks* of the model
// (callback, typically grad-clip + Adam::step_range), and the allgather
// then distributes updated parameters instead of mean gradients — one
// collective, no redundant full-model optimizer work per rank.
//
// The abstract Comm carries everything transport-independent (chunk
// partition, ring accounting, the single-rank degenerate step) so
// ThreadComm (threads + SpinBarrier over process-local vectors) and
// ProcComm (processes + futex barrier over a POSIX shm segment) are the
// *same algorithm* over different memory — which is what makes the
// cross-fabric equivalence grid in tests/test_equivalence.cpp a
// bit-identical comparison rather than a tolerance test.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "util/barrier.hpp"
#include "util/wait.hpp"

namespace disttgl::dist {

// Per-chunk hook for the fused path: consume the mean gradients in
// [lo, hi) and update the parameters there. `mean_grad_sq_norm` is the
// global squared L2 norm of the mean gradient (deterministic chunk-order
// summation), for global grad-clipping. Plain function pointer + context
// so the per-iteration hot path never type-erases through a heap
// allocation.
using ChunkStepFn = void (*)(void* ctx, std::size_t lo, std::size_t hi,
                             double mean_grad_sq_norm);

class Comm {
 public:
  struct Options {
    // Elements per reduce-scatter chunk; chunk c is owned by rank
    // c % ranks. 0 = one balanced chunk per rank (ceil(size / ranks)).
    // Smaller chunks interleave ownership across the payload (useful
    // when per-element cost is skewed); they do not change results.
    std::size_t chunk_elems = 0;
    // Bounded-spin → park budget for every wait inside the collective.
    WaitPolicy wait;
  };

  virtual ~Comm() = default;

  std::size_t ranks() const { return ranks_; }

  // Pre-sizes the persistent staging buffers for payloads up to
  // `max_elems`. Call once before the trainers start. ThreadComm can
  // grow later (barrier-protected, allocating); ProcComm cannot — its
  // segment is fixed at creation, and an oversize payload is a typed
  // kCapacity error.
  virtual void reserve(std::size_t max_elems) = 0;
  virtual std::size_t capacity() const = 0;

  // Replace `data` on every rank with the elementwise mean across ranks.
  // All ranks must call with equally-sized spans. Blocking.
  virtual void allreduce_mean(std::size_t rank, std::span<float> data) = 0;

  // Fused allreduce→optimizer step. All ranks contribute `grads` and
  // hold identical `params`; the two spans must be the same length on
  // every rank (one flat element per parameter, as in
  // Module::flat_grads/flat_values). Sequence: reduce-scatter the mean
  // gradient into each owner's grads[lo, hi) → share per-chunk partial
  // norms → fn(ctx, lo, hi, global_sq_norm) for every owned chunk (the
  // callback steps params[lo, hi) from grads[lo, hi)) → allgather
  // params. Every rank leaves with identical updated params; grads
  // content outside a rank's owned chunks is its stale local
  // contribution.
  virtual void allreduce_step(std::size_t rank, std::span<float> grads,
                              std::span<float> params, ChunkStepFn fn,
                              void* ctx) = 0;

  // Logical bytes a ring allreduce would have moved so far (all calls).
  virtual std::uint64_t logical_bytes() const = 0;
  virtual std::uint64_t num_allreduces() const = 0;

  // Poisons the collective: peers currently parked (or arriving later)
  // fail with kAborted instead of waiting for a rank that will never
  // come. Error paths and the recovery supervisor use this for fast
  // group teardown. Idempotent; callable from any thread.
  virtual void abort_session() = 0;
  virtual bool aborted() const = 0;

  // Full-group synchronization point, used by the checkpoint protocol.
  // A size-0 allreduce: both fabrics handle empty payloads (the memcpys
  // are guarded and the chunk loops are no-ops), so this reuses the
  // existing deadline/abort machinery instead of adding a second
  // barrier implementation per transport.
  void barrier(std::size_t rank) { allreduce_mean(rank, {}); }

  // Chunk partition of a payload of `size` elements.
  std::size_t chunk_elems_for(std::size_t size) const;
  std::size_t num_chunks_for(std::size_t size) const;

 protected:
  Comm(std::size_t ranks, Options opts);

  // Ring allreduce volume for one call: each rank sends 2(r−1)/r of the
  // payload.
  std::uint64_t ring_bytes(std::size_t size) const;

  // The ranks == 1 degenerate fused step: grads are already the mean;
  // keep the same chunk-ordered norm summation as the multi-rank path so
  // the norm (and any clipping decision) is rank-count independent.
  void step_single_rank(std::span<float> grads, ChunkStepFn fn,
                        void* ctx) const;

  std::size_t ranks_;
  Options opts_;
};

// In-process transport: trainer threads over process-local staging
// vectors, synchronized by a SpinBarrier.
class ThreadComm final : public Comm {
 public:
  explicit ThreadComm(std::size_t ranks);
  ThreadComm(std::size_t ranks, Options opts);

  void reserve(std::size_t max_elems) override;
  std::size_t capacity() const override { return max_elems_; }

  void allreduce_mean(std::size_t rank, std::span<float> data) override;
  void allreduce_step(std::size_t rank, std::span<float> grads,
                      std::span<float> params, ChunkStepFn fn,
                      void* ctx) override;

  std::uint64_t logical_bytes() const override {
    return logical_bytes_.load();
  }
  std::uint64_t num_allreduces() const override { return num_calls_.load(); }

  void abort_session() override {
    aborted_.store(true, std::memory_order_release);
    barrier_.poison();
  }
  bool aborted() const override {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  // Barrier arrival that converts a poisoned barrier into the same
  // typed kAborted the proc fabric throws, so trainer error handling is
  // fabric-independent.
  void sync(BarrierToken& token);
  void grow_if_needed(std::size_t rank, std::size_t size, BarrierToken& token);
  void check_uniform_size(std::size_t rank, std::size_t size);
  void account(std::size_t rank, std::size_t size);

  SpinBarrier barrier_;
  std::vector<BarrierToken> tokens_;
  // Persistent staging: one contribution row per rank at stride
  // max_elems_, one shared result row (reduced means, or stepped
  // parameters on the fused path), one partial-norm slot per chunk.
  std::vector<float> staged_;
  std::vector<float> result_;
  std::vector<double> norms_;
  std::vector<std::size_t> sizes_;  // per-rank payload size (contract check)
  std::size_t max_elems_ = 0;
  std::atomic<std::uint64_t> logical_bytes_{0};
  std::atomic<std::uint64_t> num_calls_{0};
  std::atomic<bool> aborted_{false};
};

}  // namespace disttgl::dist
