#include "nn/attention.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace disttgl::nn {

namespace {
// Per-root attention scale 1/sqrt(|N_v|) from Eq. 7.
float root_scale(std::size_t valid) {
  return valid == 0 ? 0.0f : 1.0f / std::sqrt(static_cast<float>(valid));
}
}  // namespace

TemporalAttention::TemporalAttention(std::string name, const AttentionDims& dims,
                                     Rng& rng)
    : dims_(dims),
      wq_(name + ".wq", dims.node_dim + dims.time_dim, dims.attn_dim, rng),
      wk_(name + ".wk", dims.node_dim + dims.edge_dim + dims.time_dim,
          dims.attn_dim, rng),
      wv_(name + ".wv", dims.node_dim + dims.edge_dim + dims.time_dim,
          dims.attn_dim, rng),
      wo_(name + ".wo", dims.attn_dim + dims.node_dim, dims.out_dim, rng),
      time_enc_(name + ".time_enc", dims.time_dim) {
  DT_CHECK_GT(dims.num_heads, 0u);
  DT_CHECK_EQ(dims.attn_dim % dims.num_heads, 0u);
  DT_CHECK_GT(dims.max_neighbors, 0u);
}

const Matrix& TemporalAttention::forward(const Matrix& node_repr,
                                         const Matrix& neigh_repr,
                                         const Matrix& edge_feat,
                                         std::span<const float> dt,
                                         std::span<const std::size_t> valid,
                                         Ctx* ctx) const {
  DT_CHECK(ctx != nullptr);
  const std::size_t n = node_repr.rows();
  const std::size_t K = dims_.max_neighbors;
  const std::size_t H = dims_.num_heads;
  const std::size_t dh = dims_.attn_dim / H;
  DT_CHECK_EQ(neigh_repr.rows(), n * K);
  DT_CHECK_EQ(dt.size(), n * K);
  DT_CHECK_EQ(valid.size(), n);

  ctx->n = n;
  ctx->valid.assign(valid.begin(), valid.end());

  // Query: {s_v || Φ(0)}.
  ctx->dt0.assign(n, 0.0f);
  time_enc_.forward_into(ctx->dt0, &ctx->t0_ctx, ctx->phi0);
  Matrix::concat_cols_into(node_repr, ctx->phi0, ctx->q_in);
  wq_.forward_into(ctx->q_in, &ctx->q_ctx, ctx->q);

  // Keys/values: {S_w || E_vw || Φ(Δt)}.
  time_enc_.forward_into(dt, &ctx->tdt_ctx, ctx->phidt);
  if (dims_.edge_dim > 0)
    Matrix::concat_cols_into(neigh_repr, edge_feat, ctx->phidt, ctx->kv_in);
  else
    Matrix::concat_cols_into(neigh_repr, ctx->phidt, ctx->kv_in);
  wk_.forward_into(ctx->kv_in, &ctx->k_ctx, ctx->k);
  wv_.forward_into(ctx->kv_in, &ctx->v_ctx, ctx->v);

  // Per-head scaled dot-product with masked softmax over valid slots.
  ctx->alpha.resize(H);
  ctx->h_att.resize(n, dims_.attn_dim, 0.0f);
  for (std::size_t h = 0; h < H; ++h) {
    const std::size_t off = h * dh;
    ctx->scores.reset_shape(n, K);
    for (std::size_t r = 0; r < n; ++r) {
      const float scale = root_scale(valid[r]);
      const float* qrow = ctx->q.row_ptr(r) + off;
      float* srow = ctx->scores.row_ptr(r);
      for (std::size_t k = 0; k < valid[r]; ++k) {
        const float* krow = ctx->k.row_ptr(r * K + k) + off;
        float acc = 0.0f;
        for (std::size_t c = 0; c < dh; ++c) acc += qrow[c] * krow[c];
        srow[k] = acc * scale;
      }
    }
    Matrix& alpha = ctx->alpha[h];
    masked_row_softmax_into(ctx->scores, valid, alpha);
    for (std::size_t r = 0; r < n; ++r) {
      float* hrow = ctx->h_att.row_ptr(r) + off;
      const float* arow = alpha.row_ptr(r);
      for (std::size_t k = 0; k < valid[r]; ++k) {
        const float* vrow = ctx->v.row_ptr(r * K + k) + off;
        const float a = arow[k];
        for (std::size_t c = 0; c < dh; ++c) hrow[c] += a * vrow[c];
      }
    }
  }

  // Output head: ReLU(W_o {h_v || s_v}).
  Matrix::concat_cols_into(ctx->h_att, node_repr, ctx->o_in);
  wo_.forward_into(ctx->o_in, &ctx->o_ctx, ctx->out);
  relu_inplace(ctx->out);
  return ctx->out;
}

TemporalAttention::InputGrads TemporalAttention::backward(Ctx& ctx,
                                                          const Matrix& dout) {
  InputGrads grads;
  backward_into(ctx, dout, grads);
  return grads;
}

void TemporalAttention::backward_into(Ctx& ctx, const Matrix& dout,
                                      InputGrads& grads) {
  const std::size_t n = ctx.n;
  const std::size_t K = dims_.max_neighbors;
  const std::size_t H = dims_.num_heads;
  const std::size_t dh = dims_.attn_dim / H;
  const std::size_t dn = dims_.node_dim;
  const std::size_t da = dims_.attn_dim;

  // Output head. dh_att is columns [0, da) of do_in, read in place.
  relu_backward_into(ctx.out, dout, ctx.dpre);
  wo_.backward_into(ctx.o_ctx, ctx.dpre, ctx.do_in);
  grads.dnode_repr.resize(n, dn, 0.0f);
  for (std::size_t r = 0; r < n; ++r) {
    float* dst = grads.dnode_repr.row_ptr(r);
    const float* src = ctx.do_in.row_ptr(r) + da;
    for (std::size_t c = 0; c < dn; ++c) dst[c] += src[c];
  }

  // Attention core, per head.
  ctx.dq.resize(n, da, 0.0f);
  ctx.dk.resize(n * K, da, 0.0f);
  ctx.dv.resize(n * K, da, 0.0f);
  for (std::size_t h = 0; h < H; ++h) {
    const std::size_t off = h * dh;
    const Matrix& alpha = ctx.alpha[h];
    ctx.dalpha.reset_shape(n, K);
    for (std::size_t r = 0; r < n; ++r) {
      const float* grow = ctx.do_in.row_ptr(r) + off;
      const float* arow = alpha.row_ptr(r);
      float* darow = ctx.dalpha.row_ptr(r);
      for (std::size_t k = 0; k < ctx.valid[r]; ++k) {
        const float* vrow = ctx.v.row_ptr(r * K + k) + off;
        float* dvrow = ctx.dv.row_ptr(r * K + k) + off;
        float acc = 0.0f;
        for (std::size_t c = 0; c < dh; ++c) {
          acc += grow[c] * vrow[c];
          dvrow[c] += arow[k] * grow[c];
        }
        darow[k] = acc;
      }
    }
    masked_row_softmax_backward_into(alpha, ctx.dalpha, ctx.valid, ctx.dscores);
    for (std::size_t r = 0; r < n; ++r) {
      const float scale = root_scale(ctx.valid[r]);
      const float* qrow = ctx.q.row_ptr(r) + off;
      float* dqrow = ctx.dq.row_ptr(r) + off;
      const float* dsrow = ctx.dscores.row_ptr(r);
      for (std::size_t k = 0; k < ctx.valid[r]; ++k) {
        const float ds = dsrow[k] * scale;
        const float* krow = ctx.k.row_ptr(r * K + k) + off;
        float* dkrow = ctx.dk.row_ptr(r * K + k) + off;
        for (std::size_t c = 0; c < dh; ++c) {
          dqrow[c] += ds * krow[c];
          dkrow[c] += ds * qrow[c];
        }
      }
    }
  }

  // Query projection path: q_in = {s_v || Φ(0)}.
  wq_.backward_into(ctx.q_ctx, ctx.dq, ctx.dq_in);
  for (std::size_t r = 0; r < n; ++r) {
    float* dst = grads.dnode_repr.row_ptr(r);
    const float* src = ctx.dq_in.row_ptr(r);
    for (std::size_t c = 0; c < dn; ++c) dst[c] += src[c];
  }
  time_enc_.backward_cols(ctx.t0_ctx, ctx.dq_in, dn);

  // Key/value projection path: kv_in = {S_w || E_vw || Φ(Δt)}.
  wk_.backward_into(ctx.k_ctx, ctx.dk, ctx.dkv_in);
  wv_.backward_into(ctx.v_ctx, ctx.dv, ctx.dkv_in, /*accumulate_dx=*/true);
  ctx.dkv_in.slice_cols_into(0, dn, grads.dneigh_repr);
  const std::size_t t_off = dn + dims_.edge_dim;
  time_enc_.backward_cols(ctx.tdt_ctx, ctx.dkv_in, t_off);
  // Edge-feature gradients are dropped: features are dataset constants.
}

void TemporalAttention::collect_parameters(std::vector<Parameter*>& out) {
  wq_.collect_parameters(out);
  wk_.collect_parameters(out);
  wv_.collect_parameters(out);
  wo_.collect_parameters(out);
  time_enc_.collect_parameters(out);
}

}  // namespace disttgl::nn
