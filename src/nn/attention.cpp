#include "nn/attention.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace disttgl::nn {

namespace {
// Per-root attention scale 1/sqrt(|N_v|) from Eq. 7.
float root_scale(std::size_t valid) {
  return valid == 0 ? 0.0f : 1.0f / std::sqrt(static_cast<float>(valid));
}
}  // namespace

TemporalAttention::TemporalAttention(std::string name, const AttentionDims& dims,
                                     Rng& rng)
    : dims_(dims),
      wq_(name + ".wq", dims.node_dim + dims.time_dim, dims.attn_dim, rng),
      wk_(name + ".wk", dims.node_dim + dims.edge_dim + dims.time_dim,
          dims.attn_dim, rng),
      wv_(name + ".wv", dims.node_dim + dims.edge_dim + dims.time_dim,
          dims.attn_dim, rng),
      wo_(name + ".wo", dims.attn_dim + dims.node_dim, dims.out_dim, rng),
      time_enc_(name + ".time_enc", dims.time_dim) {
  DT_CHECK_GT(dims.num_heads, 0u);
  DT_CHECK_EQ(dims.attn_dim % dims.num_heads, 0u);
  DT_CHECK_GT(dims.max_neighbors, 0u);
}

Matrix TemporalAttention::forward(const Matrix& node_repr, const Matrix& neigh_repr,
                                  const Matrix& edge_feat,
                                  std::span<const float> dt,
                                  std::span<const std::size_t> valid,
                                  Ctx* ctx) const {
  DT_CHECK(ctx != nullptr);
  const std::size_t n = node_repr.rows();
  const std::size_t K = dims_.max_neighbors;
  const std::size_t H = dims_.num_heads;
  const std::size_t dh = dims_.attn_dim / H;
  DT_CHECK_EQ(neigh_repr.rows(), n * K);
  DT_CHECK_EQ(dt.size(), n * K);
  DT_CHECK_EQ(valid.size(), n);

  ctx->n = n;
  ctx->valid.assign(valid.begin(), valid.end());

  // Query: {s_v || Φ(0)}.
  std::vector<float> zeros(n, 0.0f);
  Matrix phi0 = time_enc_.forward(zeros, &ctx->t0_ctx);
  Matrix q_in = Matrix::concat_cols(node_repr, phi0);
  ctx->q = wq_.forward(q_in, &ctx->q_ctx);

  // Keys/values: {S_w || E_vw || Φ(Δt)}.
  Matrix phidt = time_enc_.forward(dt, &ctx->tdt_ctx);
  Matrix kv_in = dims_.edge_dim > 0
                     ? Matrix::concat_cols(neigh_repr, edge_feat, phidt)
                     : Matrix::concat_cols(neigh_repr, phidt);
  ctx->k = wk_.forward(kv_in, &ctx->k_ctx);
  ctx->v = wv_.forward(kv_in, &ctx->v_ctx);

  // Per-head scaled dot-product with masked softmax over valid slots.
  ctx->alpha.clear();
  ctx->alpha.reserve(H);
  Matrix h_att(n, dims_.attn_dim);
  for (std::size_t h = 0; h < H; ++h) {
    const std::size_t off = h * dh;
    Matrix scores(n, K);
    for (std::size_t r = 0; r < n; ++r) {
      const float scale = root_scale(valid[r]);
      const float* qrow = ctx->q.row_ptr(r) + off;
      float* srow = scores.row_ptr(r);
      for (std::size_t k = 0; k < valid[r]; ++k) {
        const float* krow = ctx->k.row_ptr(r * K + k) + off;
        float acc = 0.0f;
        for (std::size_t c = 0; c < dh; ++c) acc += qrow[c] * krow[c];
        srow[k] = acc * scale;
      }
    }
    Matrix alpha = masked_row_softmax(scores, valid);
    for (std::size_t r = 0; r < n; ++r) {
      float* hrow = h_att.row_ptr(r) + off;
      const float* arow = alpha.row_ptr(r);
      for (std::size_t k = 0; k < valid[r]; ++k) {
        const float* vrow = ctx->v.row_ptr(r * K + k) + off;
        const float a = arow[k];
        for (std::size_t c = 0; c < dh; ++c) hrow[c] += a * vrow[c];
      }
    }
    ctx->alpha.push_back(std::move(alpha));
  }
  ctx->h_att = h_att;

  // Output head: ReLU(W_o {h_v || s_v}).
  Matrix o_in = Matrix::concat_cols(h_att, node_repr);
  Matrix out = relu(wo_.forward(o_in, &ctx->o_ctx));
  ctx->out = out;
  return out;
}

TemporalAttention::InputGrads TemporalAttention::backward(const Ctx& ctx,
                                                          const Matrix& dout) {
  const std::size_t n = ctx.n;
  const std::size_t K = dims_.max_neighbors;
  const std::size_t H = dims_.num_heads;
  const std::size_t dh = dims_.attn_dim / H;
  const std::size_t dn = dims_.node_dim;

  InputGrads grads;
  grads.dnode_repr.resize(n, dn);
  grads.dneigh_repr.resize(n * K, dn);

  // Output head.
  Matrix dpre = relu_backward(ctx.out, dout);
  Matrix do_in = wo_.backward(ctx.o_ctx, dpre);
  Matrix dh_att = do_in.slice_cols(0, dims_.attn_dim);
  grads.dnode_repr += do_in.slice_cols(dims_.attn_dim, dims_.attn_dim + dn);

  // Attention core, per head.
  Matrix dq(n, dims_.attn_dim);
  Matrix dk(n * K, dims_.attn_dim);
  Matrix dv(n * K, dims_.attn_dim);
  for (std::size_t h = 0; h < H; ++h) {
    const std::size_t off = h * dh;
    const Matrix& alpha = ctx.alpha[h];
    Matrix dalpha(n, K);
    for (std::size_t r = 0; r < n; ++r) {
      const float* grow = dh_att.row_ptr(r) + off;
      const float* arow = alpha.row_ptr(r);
      float* darow = dalpha.row_ptr(r);
      for (std::size_t k = 0; k < ctx.valid[r]; ++k) {
        const float* vrow = ctx.v.row_ptr(r * K + k) + off;
        float* dvrow = dv.row_ptr(r * K + k) + off;
        float acc = 0.0f;
        for (std::size_t c = 0; c < dh; ++c) {
          acc += grow[c] * vrow[c];
          dvrow[c] += arow[k] * grow[c];
        }
        darow[k] = acc;
      }
    }
    Matrix dscores = masked_row_softmax_backward(alpha, dalpha, ctx.valid);
    for (std::size_t r = 0; r < n; ++r) {
      const float scale = root_scale(ctx.valid[r]);
      const float* qrow = ctx.q.row_ptr(r) + off;
      float* dqrow = dq.row_ptr(r) + off;
      const float* dsrow = dscores.row_ptr(r);
      for (std::size_t k = 0; k < ctx.valid[r]; ++k) {
        const float ds = dsrow[k] * scale;
        const float* krow = ctx.k.row_ptr(r * K + k) + off;
        float* dkrow = dk.row_ptr(r * K + k) + off;
        for (std::size_t c = 0; c < dh; ++c) {
          dqrow[c] += ds * krow[c];
          dkrow[c] += ds * qrow[c];
        }
      }
    }
  }

  // Query projection path: q_in = {s_v || Φ(0)}.
  Matrix dq_in = wq_.backward(ctx.q_ctx, dq);
  grads.dnode_repr += dq_in.slice_cols(0, dn);
  time_enc_.backward(ctx.t0_ctx, dq_in.slice_cols(dn, dn + dims_.time_dim));

  // Key/value projection path: kv_in = {S_w || E_vw || Φ(Δt)}.
  Matrix dkv_in = wk_.backward(ctx.k_ctx, dk);
  dkv_in += wv_.backward(ctx.v_ctx, dv);
  grads.dneigh_repr += dkv_in.slice_cols(0, dn);
  const std::size_t t_off = dn + dims_.edge_dim;
  time_enc_.backward(ctx.tdt_ctx, dkv_in.slice_cols(t_off, t_off + dims_.time_dim));
  // Edge-feature gradients are dropped: features are dataset constants.

  return grads;
}

void TemporalAttention::collect_parameters(std::vector<Parameter*>& out) {
  wq_.collect_parameters(out);
  wk_.collect_parameters(out);
  wv_.collect_parameters(out);
  wo_.collect_parameters(out);
  time_enc_.collect_parameters(out);
}

}  // namespace disttgl::nn
