// Fully-connected layer y = xW + b.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace disttgl::nn {

class Linear : public Module {
 public:
  struct Ctx {
    Matrix input;  // x, cached for the weight gradient.
  };

  Linear(std::string name, std::size_t in_dim, std::size_t out_dim, Rng& rng,
         bool bias = true);

  // y = xW + b. If `ctx` is non-null the input is cached for backward.
  Matrix forward(const Matrix& x, Ctx* ctx = nullptr) const;
  // Allocation-free form: y is reshaped in place (capacity-reusing).
  void forward_into(const Matrix& x, Ctx* ctx, Matrix& y) const;

  // Accumulates dW, db; returns dx.
  Matrix backward(const Ctx& ctx, const Matrix& dy);
  // Allocation-free form: dx = dy Wᵀ written (or, with `accumulate_dx`,
  // added — used when several projections share one input) into dx.
  void backward_into(const Ctx& ctx, const Matrix& dy, Matrix& dx,
                     bool accumulate_dx = false);

  std::size_t in_dim() const { return w_.value.rows(); }
  std::size_t out_dim() const { return w_.value.cols(); }

  void collect_parameters(std::vector<Parameter*>& out) override;

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  bool has_bias() const { return has_bias_; }

 private:
  Parameter w_;  // [in x out]
  Parameter b_;  // [1 x out]
  bool has_bias_;
};

}  // namespace disttgl::nn
