// Optimizers over Parameter sets.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace disttgl::nn {

// Clip gradients to a global L2 norm; returns the pre-clip norm.
float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

// Adam with optional decoupled weight decay. State is keyed by position
// in the parameter list, which is stable for a fixed model.
class Adam {
 public:
  using Options = AdamOptions;

  explicit Adam(std::vector<Parameter*> params, Options opts = Options());

  void step();
  void zero_grad();
  void set_lr(float lr) { opts_.lr = lr; }
  float lr() const { return opts_.lr; }
  std::size_t steps_taken() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  Options opts_;
  std::vector<Matrix> m_, v_;
  std::size_t t_ = 0;
};

// Plain SGD, used by the static-memory pre-trainer and as an ablation.
class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);

  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

}  // namespace disttgl::nn
