// Optimizers over Parameter sets.
#pragma once

#include <span>
#include <vector>

#include "nn/module.hpp"

namespace disttgl::nn {

// Clip gradients to a global L2 norm; returns the pre-clip norm.
float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

// Adam with optional decoupled weight decay. Moment state is stored as
// two flat buffers laid out in parameter order (stable for a fixed
// model), which is what lets the fused gradient-sync path step an
// arbitrary flat-index range.
class Adam {
 public:
  using Options = AdamOptions;

  explicit Adam(std::vector<Parameter*> params, Options opts = Options());

  void step();
  void zero_grad();
  void set_lr(float lr) { opts_.lr = lr; }
  float lr() const { return opts_.lr; }
  std::size_t steps_taken() const { return t_; }

  // ---- fused allreduce→step path (ThreadComm::allreduce_step) ----
  // begin_step() advances the shared step count / bias corrections once
  // per iteration; step_range(lo, hi) then applies the update to flat
  // parameter indices [lo, hi) — callable once per owned chunk, in any
  // order, covering any subset. Element math is identical to step()
  // (step() == begin_step() + step_range(0, num_elements())).
  // step_range requires the parameters to live in contiguous flat
  // storage (nn::Module::freeze_flat_storage).
  void begin_step();
  void step_range(std::size_t lo, std::size_t hi);
  std::size_t num_elements() const { return total_; }

  // ---- checkpoint support (core/checkpoint.hpp) ----
  // The full optimizer trajectory is (t_, m_, v_): bias corrections are
  // recomputed from t_ at the next begin_step()/step(), so restoring
  // these three reproduces the update stream bitwise. On the fused path
  // each rank only ever steps its owned chunks, so moments are
  // *per-rank* state and each rank snapshots/restores its own.
  std::span<const float> moment1() const { return m_; }
  std::span<const float> moment2() const { return v_; }
  void restore_state(std::size_t steps, std::span<const float> m,
                     std::span<const float> v);

 private:
  void update_span(std::size_t lo, std::size_t hi, float* values,
                   const float* grads);

  std::vector<Parameter*> params_;
  Options opts_;
  std::vector<float> m_, v_;           // flat moments, parameter order
  std::vector<std::size_t> offsets_;   // flat offset per parameter
  std::size_t total_ = 0;
  std::size_t t_ = 0;
  float bc1_ = 1.0f, bc2_ = 1.0f;      // bias corrections for step t_
  // Lazily verified contiguity (value/grad base pointers) for step_range.
  int contiguous_ = -1;
  float* value_base_ = nullptr;
  float* grad_base_ = nullptr;
};

// Plain SGD, used by the static-memory pre-trainer and as an ablation.
class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);

  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

}  // namespace disttgl::nn
