#include "nn/optim.hpp"

#include <cmath>

#include "util/check.hpp"

namespace disttgl::nn {

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  double sq = 0.0;
  for (const Parameter* p : params) sq += p->grad.squared_norm();
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) p->grad *= scale;
  }
  return norm;
}

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      float g = p.grad.data()[j];
      if (opts_.weight_decay > 0.0f)
        g += opts_.weight_decay * p.value.data()[j];
      m.data()[j] = opts_.beta1 * m.data()[j] + (1.0f - opts_.beta1) * g;
      v.data()[j] = opts_.beta2 * v.data()[j] + (1.0f - opts_.beta2) * g * g;
      const float mhat = m.data()[j] / bc1;
      const float vhat = v.data()[j] / bc2;
      p.value.data()[j] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const Parameter* p : params_)
      velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (momentum_ > 0.0f) {
      Matrix& vel = velocity_[i];
      vel *= momentum_;
      vel.add_scaled(p.grad, 1.0f);
      p.value.add_scaled(vel, -lr_);
    } else {
      p.value.add_scaled(p.grad, -lr_);
    }
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

}  // namespace disttgl::nn
