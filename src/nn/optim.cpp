#include "nn/optim.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace disttgl::nn {

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  double sq = 0.0;
  for (const Parameter* p : params) sq += p->grad.squared_norm();
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) p->grad *= scale;
  }
  return norm;
}

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  offsets_.reserve(params_.size());
  for (const Parameter* p : params_) {
    offsets_.push_back(total_);
    total_ += p->size();
  }
  m_.assign(total_, 0.0f);
  v_.assign(total_, 0.0f);
}

void Adam::begin_step() {
  ++t_;
  bc1_ = 1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  bc2_ = 1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
}

// The element update over flat indices [lo, hi); `values`/`grads` point
// at flat index `lo`. Shared by the per-parameter and contiguous paths
// so both produce bit-identical results.
void Adam::update_span(std::size_t lo, std::size_t hi, float* values,
                       const float* grads) {
  for (std::size_t j = lo; j < hi; ++j) {
    float g = grads[j - lo];
    if (opts_.weight_decay > 0.0f) g += opts_.weight_decay * values[j - lo];
    m_[j] = opts_.beta1 * m_[j] + (1.0f - opts_.beta1) * g;
    v_[j] = opts_.beta2 * v_[j] + (1.0f - opts_.beta2) * g * g;
    const float mhat = m_[j] / bc1_;
    const float vhat = v_[j] / bc2_;
    values[j - lo] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
  }
}

void Adam::step() {
  begin_step();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    const std::size_t off = offsets_[i];
    update_span(off, off + p.value.size(), p.value.data(), p.grad.data());
  }
}

void Adam::step_range(std::size_t lo, std::size_t hi) {
  DT_CHECK_LE(lo, hi);
  DT_CHECK_LE(hi, total_);
  if (contiguous_ < 0) {
    contiguous_ = !params_.empty();
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (params_[i]->value.data() != params_[0]->value.data() + offsets_[i] ||
          params_[i]->grad.data() != params_[0]->grad.data() + offsets_[i])
        contiguous_ = 0;
    }
    if (contiguous_) {
      value_base_ = params_[0]->value.data();
      grad_base_ = params_[0]->grad.data();
    }
  }
  DT_CHECK_MSG(contiguous_ == 1,
               "Adam::step_range requires contiguous flat parameter storage "
               "(Module::freeze_flat_storage)");
  update_span(lo, hi, value_base_ + lo, grad_base_ + lo);
}

void Adam::restore_state(std::size_t steps, std::span<const float> m,
                         std::span<const float> v) {
  DT_CHECK_EQ(m.size(), total_);
  DT_CHECK_EQ(v.size(), total_);
  t_ = steps;
  std::copy(m.begin(), m.end(), m_.begin());
  std::copy(v.begin(), v.end(), v_.begin());
  // bc1_/bc2_ are derived from t_ at the next begin_step()/step().
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const Parameter* p : params_)
      velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (momentum_ > 0.0f) {
      Matrix& vel = velocity_[i];
      vel *= momentum_;
      vel.add_scaled(p.grad, 1.0f);
      p.value.add_scaled(vel, -lr_);
    } else {
      p.value.add_scaled(p.grad, -lr_);
    }
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

}  // namespace disttgl::nn
