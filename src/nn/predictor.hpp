// Task heads: temporal link prediction and dynamic edge classification.
#pragma once

#include "nn/linear.hpp"

namespace disttgl::nn {

// Two-layer MLP scoring (src, dst) embedding pairs. Used self-supervised:
// positive score for the true destination, negative scores for sampled
// destinations (49 at evaluation time per the paper).
class EdgePredictor : public Module {
 public:
  struct Ctx {
    Linear::Ctx l1_ctx, l2_ctx;
    Matrix hidden;  // post-ReLU, for relu backward
  };

  EdgePredictor(std::string name, std::size_t emb_dim, std::size_t hidden_dim,
                Rng& rng);

  // src, dst: [n x emb_dim] -> scores [n x 1].
  Matrix forward(const Matrix& src, const Matrix& dst, Ctx* ctx) const;

  struct InputGrads {
    Matrix dsrc, ddst;
  };
  InputGrads backward(const Ctx& ctx, const Matrix& dscores);

  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  Linear l1_, l2_;
  std::size_t emb_dim_;
};

// Two-layer MLP emitting C logits per edge for the multi-label dynamic
// edge classification task (GDELT: 56 classes, 6 active labels).
class EdgeClassifier : public Module {
 public:
  struct Ctx {
    Linear::Ctx l1_ctx, l2_ctx;
    Matrix hidden;
  };

  EdgeClassifier(std::string name, std::size_t emb_dim, std::size_t hidden_dim,
                 std::size_t num_classes, Rng& rng);

  std::size_t num_classes() const { return l2_.out_dim(); }

  // src, dst: [n x emb_dim] -> logits [n x num_classes].
  Matrix forward(const Matrix& src, const Matrix& dst, Ctx* ctx) const;

  struct InputGrads {
    Matrix dsrc, ddst;
  };
  InputGrads backward(const Ctx& ctx, const Matrix& dlogits);

  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  Linear l1_, l2_;
  std::size_t emb_dim_;
};

}  // namespace disttgl::nn
