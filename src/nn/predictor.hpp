// Task heads: temporal link prediction and dynamic edge classification.
//
// Both are two-layer MLPs over {src || dst}; the Ctx carries the concat
// and hidden-layer scratch so reusing one Ctx across iterations makes
// the head allocation-free in steady state.
#pragma once

#include "nn/linear.hpp"

namespace disttgl::nn {

// Two-layer MLP scoring (src, dst) embedding pairs. Used self-supervised:
// positive score for the true destination, negative scores for sampled
// destinations (49 at evaluation time per the paper).
class EdgePredictor : public Module {
 public:
  struct Ctx {
    Linear::Ctx l1_ctx, l2_ctx;
    Matrix hidden;    // post-ReLU, for relu backward
    Matrix x;         // {src || dst} concat scratch
    Matrix dhid, dx;  // backward scratch
  };

  EdgePredictor(std::string name, std::size_t emb_dim, std::size_t hidden_dim,
                Rng& rng);

  // src, dst: [n x emb_dim] -> scores [n x 1].
  Matrix forward(const Matrix& src, const Matrix& dst, Ctx* ctx) const;
  void forward_into(const Matrix& src, const Matrix& dst, Ctx* ctx,
                    Matrix& out) const;

  struct InputGrads {
    Matrix dsrc, ddst;
  };
  InputGrads backward(Ctx& ctx, const Matrix& dscores);
  void backward_into(Ctx& ctx, const Matrix& dscores, InputGrads& grads);

  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  Linear l1_, l2_;
  std::size_t emb_dim_;
};

// Two-layer MLP emitting C logits per edge for the multi-label dynamic
// edge classification task (GDELT: 56 classes, 6 active labels).
class EdgeClassifier : public Module {
 public:
  struct Ctx {
    Linear::Ctx l1_ctx, l2_ctx;
    Matrix hidden;
    Matrix x;
    Matrix dhid, dx;
  };

  EdgeClassifier(std::string name, std::size_t emb_dim, std::size_t hidden_dim,
                 std::size_t num_classes, Rng& rng);

  std::size_t num_classes() const { return l2_.out_dim(); }

  // src, dst: [n x emb_dim] -> logits [n x num_classes].
  Matrix forward(const Matrix& src, const Matrix& dst, Ctx* ctx) const;
  void forward_into(const Matrix& src, const Matrix& dst, Ctx* ctx,
                    Matrix& out) const;

  struct InputGrads {
    Matrix dsrc, ddst;
  };
  InputGrads backward(Ctx& ctx, const Matrix& dlogits);
  void backward_into(Ctx& ctx, const Matrix& dlogits, InputGrads& grads);

  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  Linear l1_, l2_;
  std::size_t emb_dim_;
};

}  // namespace disttgl::nn
