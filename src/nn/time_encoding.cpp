#include "nn/time_encoding.hpp"

#include <cmath>

#include "util/check.hpp"

namespace disttgl::nn {

TimeEncoding::TimeEncoding(std::string name, std::size_t dim)
    : omega_(name + ".omega", 1, dim), phi_(name + ".phi", 1, dim) {
  // Geometric ladder from TGAT: ω_i = 1 / 10^(4i/d). Covers time scales
  // from O(1) up to O(10^4) units.
  for (std::size_t i = 0; i < dim; ++i) {
    omega_.value(0, i) =
        1.0f / std::pow(10.0f, 4.0f * static_cast<float>(i) / static_cast<float>(dim));
    phi_.value(0, i) = 0.0f;
  }
}

Matrix TimeEncoding::forward(std::span<const float> dt, Ctx* ctx) const {
  Matrix out;
  forward_into(dt, ctx, out);
  return out;
}

void TimeEncoding::forward_into(std::span<const float> dt, Ctx* ctx,
                                Matrix& out) const {
  const std::size_t n = dt.size(), d = dim();
  out.reset_shape(n, d);
  const float* om = omega_.value.row_ptr(0);
  const float* ph = phi_.value.row_ptr(0);
  if (ctx != nullptr) {
    ctx->dt.assign(dt.begin(), dt.end());
    ctx->phase.reset_shape(n, d);
  }
  for (std::size_t r = 0; r < n; ++r) {
    float* orow = out.row_ptr(r);
    float* prow = ctx != nullptr ? ctx->phase.row_ptr(r) : nullptr;
    for (std::size_t c = 0; c < d; ++c) {
      const float phase = dt[r] * om[c] + ph[c];
      if (prow != nullptr) prow[c] = phase;
      orow[c] = std::cos(phase);
    }
  }
}

void TimeEncoding::backward(const Ctx& ctx, const Matrix& dy) {
  DT_CHECK_EQ(dy.cols(), dim());
  backward_cols(ctx, dy, 0);
}

void TimeEncoding::backward_cols(const Ctx& ctx, const Matrix& dy,
                                 std::size_t col0) {
  const std::size_t n = ctx.dt.size(), d = dim();
  DT_CHECK_EQ(dy.rows(), n);
  DT_CHECK_LE(col0 + d, dy.cols());
  // d/dx cos(x) = -sin(x); x = Δt·ω + φ.
  for (std::size_t r = 0; r < n; ++r) {
    const float* ph = ctx.phase.row_ptr(r);
    const float* g = dy.row_ptr(r) + col0;
    for (std::size_t c = 0; c < d; ++c) {
      const float dphase = -std::sin(ph[c]) * g[c];
      omega_.grad(0, c) += dphase * ctx.dt[r];
      phi_.grad(0, c) += dphase;
    }
  }
}

void TimeEncoding::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&omega_);
  out.push_back(&phi_);
}

}  // namespace disttgl::nn
