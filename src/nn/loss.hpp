// Loss functions. Each returns the scalar loss and fills gradient
// matrices w.r.t. its logits, already averaged so the trainer can feed
// them straight into backward passes.
#pragma once

#include "tensor/matrix.hpp"

namespace disttgl::nn {

// Self-supervised link-prediction BCE (TGN's objective):
//   L = mean(-log σ(pos)) + mean(-log σ(-neg))
// pos: [n x 1], neg: [n x Q] (Q negatives per positive).
// dpos/dneg receive dL/dlogit.
float link_prediction_loss(const Matrix& pos, const Matrix& neg, Matrix& dpos,
                           Matrix& dneg);

// Multi-label sigmoid BCE over C classes; targets are {0,1}.
// logits, targets: [n x C]. dlogits receives dL/dlogit (mean over n*C).
float multilabel_bce_loss(const Matrix& logits, const Matrix& targets,
                          Matrix& dlogits);

}  // namespace disttgl::nn
