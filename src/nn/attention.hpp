// Temporal graph attention aggregator (Eq. 4–7 of the paper).
//
//   q   = W_q {s_v || Φ(0)} + b_q
//   K   = W_k {S_w || E_vw || Φ(Δt)} + b_k
//   V   = W_v {S_w || E_vw || Φ(Δt)} + b_v
//   h_v = softmax(q K^T / sqrt(|N_v|)) V            (per attention head)
//   out = ReLU(W_o {h_v || s_v} + b_o)
//
// Batch layout: n root nodes, each with a fixed-capacity window of
// max_neighbors slots; `valid[r]` gives the populated prefix length.
// Neighbor tensors are flattened so slot k of root r lives at row
// r*max_neighbors + k. The per-root 1/sqrt(|N_v|) scaling follows the
// paper (not the more common 1/sqrt(d_head)).
//
// The Ctx owns every intermediate tensor the layer touches, so reusing
// one Ctx across iterations makes forward and backward allocation-free
// in steady state (same batch shape → same buffer shapes → capacity
// reuse). forward returns a reference into the Ctx.
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "nn/time_encoding.hpp"

namespace disttgl::nn {

struct AttentionDims {
  std::size_t node_dim = 0;      // root / neighbor representation width
  std::size_t edge_dim = 0;      // edge feature width (0 allowed)
  std::size_t time_dim = 0;      // time encoding width
  std::size_t attn_dim = 0;      // q/K/V width (all heads concatenated)
  std::size_t out_dim = 0;       // output embedding width
  std::size_t num_heads = 1;
  std::size_t max_neighbors = 0; // K, the neighbor window capacity
};

class TemporalAttention : public Module {
 public:
  struct Ctx {
    Linear::Ctx q_ctx, k_ctx, v_ctx, o_ctx;
    TimeEncoding::Ctx t0_ctx, tdt_ctx;
    Matrix q, k, v;                   // post-projection
    std::vector<Matrix> alpha;        // per head: [n x K] attention weights
    Matrix h_att;                     // pre-output aggregated values
    Matrix out;                       // post-ReLU output (for relu backward)
    std::vector<std::size_t> valid;   // neighbor counts
    std::size_t n = 0;
    // Scratch (not read across the forward/backward boundary):
    std::vector<float> dt0;           // all-zero deltas for Φ(0)
    Matrix phi0, phidt;               // time encodings
    Matrix q_in, kv_in, o_in;         // concatenated projection inputs
    Matrix scores;                    // per-head raw attention scores
    Matrix dpre, do_in;               // backward: pre-ReLU grad, W_o input grad
    Matrix dq, dk, dv;                // backward: projection grads
    Matrix dalpha, dscores;           // backward: per-head softmax grads
    Matrix dq_in, dkv_in;             // backward: concat input grads
  };

  TemporalAttention(std::string name, const AttentionDims& dims, Rng& rng);

  const AttentionDims& dims() const { return dims_; }

  // node_repr:  [n x node_dim]
  // neigh_repr: [n*K x node_dim]
  // edge_feat:  [n*K x edge_dim] (ignored when edge_dim == 0)
  // dt:         [n*K] time deltas (event time − neighbor memory time)
  // valid:      [n] populated neighbor counts (≤ K)
  // Returns a reference to ctx->out, valid until the next forward call
  // on the same Ctx.
  const Matrix& forward(const Matrix& node_repr, const Matrix& neigh_repr,
                        const Matrix& edge_feat, std::span<const float> dt,
                        std::span<const std::size_t> valid, Ctx* ctx) const;

  struct InputGrads {
    Matrix dnode_repr;   // [n x node_dim]
    Matrix dneigh_repr;  // [n*K x node_dim]
  };
  InputGrads backward(Ctx& ctx, const Matrix& dout);
  // Allocation-free form writing into caller-owned grads.
  void backward_into(Ctx& ctx, const Matrix& dout, InputGrads& grads);

  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  AttentionDims dims_;
  Linear wq_, wk_, wv_, wo_;
  TimeEncoding time_enc_;
};

}  // namespace disttgl::nn
