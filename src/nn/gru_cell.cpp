#include "nn/gru_cell.hpp"

#include <cmath>

#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace disttgl::nn {

GRUCell::GRUCell(std::string name, std::size_t input_dim, std::size_t hidden_dim,
                 Rng& rng)
    : wi_(name + ".w_ih", input_dim, 3 * hidden_dim),
      wh_(name + ".w_hh", hidden_dim, 3 * hidden_dim),
      bi_(name + ".b_ih", 1, 3 * hidden_dim),
      bh_(name + ".b_hh", 1, 3 * hidden_dim) {
  kaiming_uniform_fanin(wi_.value, rng, hidden_dim);
  kaiming_uniform_fanin(wh_.value, rng, hidden_dim);
  kaiming_uniform_fanin(bi_.value, rng, hidden_dim);
  kaiming_uniform_fanin(bh_.value, rng, hidden_dim);
}

Matrix GRUCell::forward(const Matrix& x, const Matrix& h, Ctx* ctx) const {
  Ctx local;
  Matrix h_new;
  forward_into(x, h, ctx != nullptr ? *ctx : local, h_new);
  return h_new;
}

void GRUCell::forward_into(const Matrix& x, const Matrix& h, Ctx& ctx,
                           Matrix& h_new) const {
  const std::size_t d = hidden_dim();
  const std::size_t nrows = x.rows();
  DT_CHECK_EQ(x.cols(), input_dim());
  DT_CHECK_EQ(h.cols(), d);
  DT_CHECK_EQ(h.rows(), nrows);

  matmul_into(x, wi_.value, ctx.gi);  // [n x 3d]
  add_bias_inplace(ctx.gi, bi_.value);
  matmul_into(h, wh_.value, ctx.gh);  // [n x 3d]
  add_bias_inplace(ctx.gh, bh_.value);

  ctx.r.reset_shape(nrows, d);
  ctx.z.reset_shape(nrows, d);
  ctx.n.reset_shape(nrows, d);
  ctx.hn_lin.reset_shape(nrows, d);
  h_new.reset_shape(nrows, d);
  for (std::size_t row = 0; row < nrows; ++row) {
    const float* gi = ctx.gi.row_ptr(row);
    const float* gh = ctx.gh.row_ptr(row);
    const float* hrow = h.row_ptr(row);
    float* r = ctx.r.row_ptr(row);
    float* z = ctx.z.row_ptr(row);
    float* n = ctx.n.row_ptr(row);
    float* hn = ctx.hn_lin.row_ptr(row);
    float* out = h_new.row_ptr(row);
    for (std::size_t c = 0; c < d; ++c) {
      r[c] = stable_sigmoid(gi[c] + gh[c]);
      z[c] = stable_sigmoid(gi[d + c] + gh[d + c]);
      hn[c] = gh[2 * d + c];
      n[c] = std::tanh(gi[2 * d + c] + r[c] * hn[c]);
      out[c] = (1.0f - z[c]) * n[c] + z[c] * hrow[c];
    }
  }

  ctx.x = x;  // capacity-reusing copies for the weight gradients
  ctx.h = h;
}

GRUCell::InputGrads GRUCell::backward(Ctx& ctx, const Matrix& dh_next) {
  InputGrads grads;
  backward_into(ctx, dh_next, grads);
  return grads;
}

void GRUCell::backward_into(Ctx& ctx, const Matrix& dh_next, InputGrads& grads) {
  const std::size_t d = hidden_dim();
  const std::size_t nrows = ctx.h.rows();
  DT_CHECK_EQ(dh_next.rows(), nrows);
  DT_CHECK_EQ(dh_next.cols(), d);

  // One fused pass: h' = (1-z)n + zh, through tanh / the gate sigmoids,
  // into the packed [r|z|n] gradient layout the weight GEMMs consume.
  ctx.dgi.reset_shape(nrows, 3 * d);
  ctx.dgh.reset_shape(nrows, 3 * d);
  for (std::size_t row = 0; row < nrows; ++row) {
    const float* g = dh_next.row_ptr(row);
    const float* r = ctx.r.row_ptr(row);
    const float* z = ctx.z.row_ptr(row);
    const float* n = ctx.n.row_ptr(row);
    const float* hn = ctx.hn_lin.row_ptr(row);
    const float* hrow = ctx.h.row_ptr(row);
    float* dgi = ctx.dgi.row_ptr(row);
    float* dgh = ctx.dgh.row_ptr(row);
    for (std::size_t c = 0; c < d; ++c) {
      const float dn = g[c] * (1.0f - z[c]);
      const float dz = g[c] * (hrow[c] - n[c]);
      const float dn_in = dn * (1.0f - n[c] * n[c]);     // tanh'
      const float dr = dn_in * hn[c];
      const float dhn = dn_in * r[c];
      const float dr_in = dr * r[c] * (1.0f - r[c]);     // σ'
      const float dz_in = dz * z[c] * (1.0f - z[c]);
      dgi[c] = dr_in;
      dgi[d + c] = dz_in;
      dgi[2 * d + c] = dn_in;
      dgh[c] = dr_in;
      dgh[d + c] = dz_in;
      dgh[2 * d + c] = dhn;
    }
  }

  matmul_tn_acc(ctx.x, ctx.dgi, wi_.grad);
  matmul_tn_acc(ctx.h, ctx.dgh, wh_.grad);
  column_sums_acc(ctx.dgi, bi_.grad);
  column_sums_acc(ctx.dgh, bh_.grad);

  matmul_nt_into(ctx.dgi, wi_.value, grads.dx);
  matmul_nt_into(ctx.dgh, wh_.value, grads.dh);
  // Direct path h' = ... + z ⊙ h.
  for (std::size_t i = 0; i < grads.dh.size(); ++i)
    grads.dh.data()[i] += dh_next.data()[i] * ctx.z.data()[i];
}

void GRUCell::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&wi_);
  out.push_back(&wh_);
  out.push_back(&bi_);
  out.push_back(&bh_);
}

}  // namespace disttgl::nn
