#include "nn/gru_cell.hpp"

#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace disttgl::nn {

GRUCell::GRUCell(std::string name, std::size_t input_dim, std::size_t hidden_dim,
                 Rng& rng)
    : wi_(name + ".w_ih", input_dim, 3 * hidden_dim),
      wh_(name + ".w_hh", hidden_dim, 3 * hidden_dim),
      bi_(name + ".b_ih", 1, 3 * hidden_dim),
      bh_(name + ".b_hh", 1, 3 * hidden_dim) {
  kaiming_uniform_fanin(wi_.value, rng, hidden_dim);
  kaiming_uniform_fanin(wh_.value, rng, hidden_dim);
  kaiming_uniform_fanin(bi_.value, rng, hidden_dim);
  kaiming_uniform_fanin(bh_.value, rng, hidden_dim);
}

Matrix GRUCell::forward(const Matrix& x, const Matrix& h, Ctx* ctx) const {
  const std::size_t d = hidden_dim();
  DT_CHECK_EQ(x.cols(), input_dim());
  DT_CHECK_EQ(h.cols(), d);
  DT_CHECK_EQ(x.rows(), h.rows());

  Matrix gi = add_bias(matmul(x, wi_.value), bi_.value);   // [n x 3d]
  Matrix gh = add_bias(matmul(h, wh_.value), bh_.value);   // [n x 3d]

  Matrix r_in = gi.slice_cols(0, d);
  r_in += gh.slice_cols(0, d);
  Matrix z_in = gi.slice_cols(d, 2 * d);
  z_in += gh.slice_cols(d, 2 * d);
  Matrix hn_lin = gh.slice_cols(2 * d, 3 * d);

  Matrix r = sigmoid(r_in);
  Matrix z = sigmoid(z_in);
  Matrix n_in = gi.slice_cols(2 * d, 3 * d);
  {
    Matrix gated = hn_lin;
    gated.hadamard(r);
    n_in += gated;
  }
  Matrix n = tanh_m(n_in);

  Matrix h_new(h.rows(), d);
  for (std::size_t i = 0; i < h_new.size(); ++i) {
    h_new.data()[i] =
        (1.0f - z.data()[i]) * n.data()[i] + z.data()[i] * h.data()[i];
  }

  if (ctx != nullptr) {
    ctx->x = x;
    ctx->h = h;
    ctx->r = std::move(r);
    ctx->z = std::move(z);
    ctx->n = std::move(n);
    ctx->hn_lin = std::move(hn_lin);
  }
  return h_new;
}

GRUCell::InputGrads GRUCell::backward(const Ctx& ctx, const Matrix& dh_next) {
  const std::size_t d = hidden_dim();
  const std::size_t nrows = ctx.h.rows();
  DT_CHECK_EQ(dh_next.rows(), nrows);
  DT_CHECK_EQ(dh_next.cols(), d);

  // h' = (1-z)n + zh
  Matrix dn(nrows, d), dz(nrows, d), dh_direct(nrows, d);
  for (std::size_t i = 0; i < dh_next.size(); ++i) {
    const float g = dh_next.data()[i];
    dn.data()[i] = g * (1.0f - ctx.z.data()[i]);
    dz.data()[i] = g * (ctx.h.data()[i] - ctx.n.data()[i]);
    dh_direct.data()[i] = g * ctx.z.data()[i];
  }

  // Through the tanh: dn_in = dn ⊙ (1 - n²).
  Matrix dn_in = tanh_backward(ctx.n, dn);
  // n_in = (x·W_in + b_in) + r ⊙ hn_lin
  Matrix dr(nrows, d);
  Matrix dhn_lin(nrows, d);
  for (std::size_t i = 0; i < dn_in.size(); ++i) {
    dr.data()[i] = dn_in.data()[i] * ctx.hn_lin.data()[i];
    dhn_lin.data()[i] = dn_in.data()[i] * ctx.r.data()[i];
  }
  // Through the gate sigmoids.
  Matrix dr_in = sigmoid_backward(ctx.r, dr);
  Matrix dz_in = sigmoid_backward(ctx.z, dz);

  // Reassemble fused [r|z|n] gradients for the input and hidden paths.
  Matrix dgi(nrows, 3 * d), dgh(nrows, 3 * d);
  for (std::size_t row = 0; row < nrows; ++row) {
    float* gi = dgi.row_ptr(row);
    float* gh = dgh.row_ptr(row);
    const float* pr = dr_in.row_ptr(row);
    const float* pz = dz_in.row_ptr(row);
    const float* pn = dn_in.row_ptr(row);
    const float* ph = dhn_lin.row_ptr(row);
    for (std::size_t c = 0; c < d; ++c) {
      gi[c] = pr[c];
      gi[d + c] = pz[c];
      gi[2 * d + c] = pn[c];
      gh[c] = pr[c];
      gh[d + c] = pz[c];
      gh[2 * d + c] = ph[c];
    }
  }

  wi_.grad += matmul_tn(ctx.x, dgi);
  wh_.grad += matmul_tn(ctx.h, dgh);
  bi_.grad += column_sums(dgi);
  bh_.grad += column_sums(dgh);

  InputGrads grads;
  grads.dx = matmul_nt(dgi, wi_.value);
  grads.dh = matmul_nt(dgh, wh_.value);
  grads.dh += dh_direct;
  return grads;
}

void GRUCell::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&wi_);
  out.push_back(&wh_);
  out.push_back(&bi_);
  out.push_back(&bh_);
}

}  // namespace disttgl::nn
