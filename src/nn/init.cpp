#include "nn/init.hpp"

#include <cmath>

namespace disttgl::nn {

void xavier_uniform(Matrix& w, Rng& rng, std::size_t fan_in, std::size_t fan_out) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.uniform(-a, a));
}

void kaiming_uniform_fanin(Matrix& w, Rng& rng, std::size_t fan_in) {
  const float a = fan_in > 0 ? 1.0f / std::sqrt(static_cast<float>(fan_in)) : 0.0f;
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.uniform(-a, a));
}

void normal_init(Matrix& w, Rng& rng, float stddev) {
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
}

}  // namespace disttgl::nn
