// Learnable time encoding Φ(Δt) = cos(Δt·ω + φ)  [23, TGAT].
//
// Maps a column of time deltas to a d-dimensional feature. ω is
// initialized to a geometric frequency ladder (as in TGAT) so short and
// long horizons are distinguishable from the first iteration; both ω and
// φ are trained.
#pragma once

#include <span>

#include "nn/module.hpp"

namespace disttgl::nn {

class TimeEncoding : public Module {
 public:
  struct Ctx {
    std::vector<float> dt;  // input deltas
    Matrix phase;           // Δt·ω + φ, cached for backward
  };

  TimeEncoding(std::string name, std::size_t dim);

  std::size_t dim() const { return omega_.value.cols(); }

  // [n] deltas -> [n x dim].
  Matrix forward(std::span<const float> dt, Ctx* ctx = nullptr) const;
  // Allocation-free form: out is reshaped in place.
  void forward_into(std::span<const float> dt, Ctx* ctx, Matrix& out) const;

  // Accumulates dω, dφ. (Time deltas are data, so no input gradient.)
  void backward(const Ctx& ctx, const Matrix& dy);
  // As backward, but reading dy from columns [col0, col0 + dim) of a
  // wider gradient matrix — avoids slicing a temporary on the hot path.
  void backward_cols(const Ctx& ctx, const Matrix& dy, std::size_t col0);

  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  Parameter omega_;  // [1 x dim] frequencies
  Parameter phi_;    // [1 x dim] phases
};

}  // namespace disttgl::nn
