// Weight initialization schemes.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace disttgl::nn {

// Glorot/Xavier uniform over [-a, a], a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Matrix& w, Rng& rng, std::size_t fan_in, std::size_t fan_out);
// Uniform over [-1/sqrt(fan_in), 1/sqrt(fan_in)] — PyTorch's default for
// GRU/Linear biases and hidden-to-hidden matrices.
void kaiming_uniform_fanin(Matrix& w, Rng& rng, std::size_t fan_in);
// i.i.d. normal(0, stddev).
void normal_init(Matrix& w, Rng& rng, float stddev);

}  // namespace disttgl::nn
