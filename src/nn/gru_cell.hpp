// GRU cell — the UPDT(·) memory updater of TGN (Eq. 3 / Eq. 8).
//
//   r  = σ(x·W_ir + b_ir + h·W_hr + b_hr)
//   z  = σ(x·W_iz + b_iz + h·W_hz + b_hz)
//   n  = tanh(x·W_in + b_in + r ⊙ (h·W_hn + b_hn))
//   h' = (1 − z) ⊙ n + z ⊙ h
//
// Following the paper (§2.1), gradients are trained *within* each cell
// application: backward produces parameter gradients plus dx and dh, and
// the trainer stops the chain at the previous memory state (no BPTT).
//
// The Ctx also carries the cell's scratch (fused gate buffers), so a
// caller that reuses one Ctx across iterations runs allocation-free.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace disttgl::nn {

class GRUCell : public Module {
 public:
  struct Ctx {
    Matrix x, h;        // inputs
    Matrix r, z, n;     // gate activations
    Matrix hn_lin;      // h·W_hn + b_hn, needed for dr
    // Scratch (reused across iterations, not read by backward's math):
    Matrix gi, gh;      // fused [r|z|n] pre-activations, [n x 3d]
    Matrix dgi, dgh;    // fused gradients, backward scratch
  };

  GRUCell(std::string name, std::size_t input_dim, std::size_t hidden_dim, Rng& rng);

  std::size_t input_dim() const { return wi_.value.rows(); }
  std::size_t hidden_dim() const { return wh_.value.rows(); }

  // x: [batch x input_dim], h: [batch x hidden_dim] -> h': same as h.
  Matrix forward(const Matrix& x, const Matrix& h, Ctx* ctx = nullptr) const;
  // Allocation-free form; `ctx` is required (it holds the scratch).
  void forward_into(const Matrix& x, const Matrix& h, Ctx& ctx,
                    Matrix& h_new) const;

  struct InputGrads {
    Matrix dx;
    Matrix dh;
  };
  // Accumulates parameter gradients; returns input gradients.
  InputGrads backward(Ctx& ctx, const Matrix& dh_next);
  // Allocation-free form writing into caller-owned grads.
  void backward_into(Ctx& ctx, const Matrix& dh_next, InputGrads& grads);

  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  // Fused gate layout along columns: [r | z | n], each hidden_dim wide.
  Parameter wi_;  // [input_dim x 3*hidden]
  Parameter wh_;  // [hidden x 3*hidden]
  Parameter bi_;  // [1 x 3*hidden]
  Parameter bh_;  // [1 x 3*hidden]
};

}  // namespace disttgl::nn
