#include "nn/linear.hpp"

#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace disttgl::nn {

Linear::Linear(std::string name, std::size_t in_dim, std::size_t out_dim,
               Rng& rng, bool bias)
    : w_(name + ".weight", in_dim, out_dim),
      b_(name + ".bias", 1, out_dim),
      has_bias_(bias) {
  xavier_uniform(w_.value, rng, in_dim, out_dim);
  if (has_bias_) kaiming_uniform_fanin(b_.value, rng, in_dim);
}

Matrix Linear::forward(const Matrix& x, Ctx* ctx) const {
  Matrix y;
  forward_into(x, ctx, y);
  return y;
}

void Linear::forward_into(const Matrix& x, Ctx* ctx, Matrix& y) const {
  DT_CHECK_EQ(x.cols(), w_.value.rows());
  matmul_into(x, w_.value, y);
  if (has_bias_) add_bias_inplace(y, b_.value);
  if (ctx != nullptr) ctx->input = x;  // capacity-reusing copy
}

Matrix Linear::backward(const Ctx& ctx, const Matrix& dy) {
  Matrix dx;
  backward_into(ctx, dy, dx);
  return dx;
}

void Linear::backward_into(const Ctx& ctx, const Matrix& dy, Matrix& dx,
                           bool accumulate_dx) {
  DT_CHECK_EQ(dy.cols(), w_.value.cols());
  DT_CHECK_EQ(dy.rows(), ctx.input.rows());
  matmul_tn_acc(ctx.input, dy, w_.grad);
  if (has_bias_) column_sums_acc(dy, b_.grad);
  if (accumulate_dx) matmul_nt_acc(dy, w_.value, dx);  // dx += dy Wᵀ
  else matmul_nt_into(dy, w_.value, dx);               // dx = dy Wᵀ
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  if (has_bias_) out.push_back(&b_);
}

}  // namespace disttgl::nn
