#include "nn/linear.hpp"

#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace disttgl::nn {

Linear::Linear(std::string name, std::size_t in_dim, std::size_t out_dim,
               Rng& rng, bool bias)
    : w_(name + ".weight", in_dim, out_dim),
      b_(name + ".bias", 1, out_dim),
      has_bias_(bias) {
  xavier_uniform(w_.value, rng, in_dim, out_dim);
  if (has_bias_) kaiming_uniform_fanin(b_.value, rng, in_dim);
}

Matrix Linear::forward(const Matrix& x, Ctx* ctx) const {
  DT_CHECK_EQ(x.cols(), w_.value.rows());
  Matrix y = matmul(x, w_.value);
  if (has_bias_) y = add_bias(y, b_.value);
  if (ctx != nullptr) ctx->input = x;
  return y;
}

Matrix Linear::backward(const Ctx& ctx, const Matrix& dy) {
  DT_CHECK_EQ(dy.cols(), w_.value.cols());
  DT_CHECK_EQ(dy.rows(), ctx.input.rows());
  w_.grad += matmul_tn(ctx.input, dy);
  if (has_bias_) b_.grad += column_sums(dy);
  return matmul_nt(dy, w_.value);  // dx = dy W^T
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  if (has_bias_) out.push_back(&b_);
}

}  // namespace disttgl::nn
