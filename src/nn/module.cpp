#include "nn/module.hpp"

#include <cstring>

#include "util/check.hpp"

namespace disttgl::nn {

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect_parameters(out);
  return out;
}

const std::vector<Parameter*>& Module::cached_parameters() {
  if (param_cache_.empty()) collect_parameters(param_cache_);
  return param_cache_;
}

void Module::zero_grad() {
  if (frozen_) {
    // One contiguous clear instead of a per-parameter walk.
    std::memset(flat_grads_.data(), 0, flat_grads_.size() * sizeof(float));
    return;
  }
  for (Parameter* p : cached_parameters()) p->zero_grad();
}

void Module::freeze_flat_storage() {
  if (frozen_) return;
  const std::vector<Parameter*>& params = cached_parameters();
  const std::size_t total = flat_size(params);
  flat_values_.resize(total);
  flat_grads_.resize(total);
  std::size_t off = 0;
  for (Parameter* p : params) {
    p->value.bind_external(flat_values_.data() + off);
    p->grad.bind_external(flat_grads_.data() + off);
    off += p->size();
  }
  frozen_ = true;
}

void Module::bind_external_values(const float* storage) {
  // The const_cast is confined here: a bound matrix only *writes*
  // through its pointer on paths this module must not take while bound
  // (optimizer steps, unflatten_values) — inference reads only. The
  // shared snapshot buffer itself stays logically immutable.
  float* base = const_cast<float*>(storage);
  std::size_t off = 0;
  for (Parameter* p : cached_parameters()) {
    p->value.rebind_external(base + off);
    off += p->size();
  }
}

std::size_t Module::num_parameters() {
  std::size_t n = 0;
  for (Parameter* p : cached_parameters()) n += p->size();
  return n;
}

std::size_t flat_size(const std::vector<Parameter*>& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) n += p->size();
  return n;
}

void flatten_values(const std::vector<Parameter*>& params, std::vector<float>& out) {
  out.resize(flat_size(params));
  std::size_t off = 0;
  for (const Parameter* p : params) {
    std::memcpy(out.data() + off, p->value.data(), p->size() * sizeof(float));
    off += p->size();
  }
}

void unflatten_values(std::span<const float> in, const std::vector<Parameter*>& params) {
  DT_CHECK_EQ(in.size(), flat_size(params));
  std::size_t off = 0;
  for (Parameter* p : params) {
    std::memcpy(p->value.data(), in.data() + off, p->size() * sizeof(float));
    off += p->size();
  }
}

}  // namespace disttgl::nn
