#include "nn/module.hpp"

#include <cstring>

#include "util/check.hpp"

namespace disttgl::nn {

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect_parameters(out);
  return out;
}

const std::vector<Parameter*>& Module::cached_parameters() {
  if (param_cache_.empty()) collect_parameters(param_cache_);
  return param_cache_;
}

void Module::zero_grad() {
  for (Parameter* p : cached_parameters()) p->zero_grad();
}

std::size_t Module::num_parameters() {
  std::size_t n = 0;
  for (Parameter* p : cached_parameters()) n += p->size();
  return n;
}

std::size_t flat_size(const std::vector<Parameter*>& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) n += p->size();
  return n;
}

namespace {
template <bool kValues>
void flatten_impl(const std::vector<Parameter*>& params, std::vector<float>& out) {
  out.resize(flat_size(params));
  std::size_t off = 0;
  for (const Parameter* p : params) {
    const Matrix& m = kValues ? p->value : p->grad;
    std::memcpy(out.data() + off, m.data(), m.size() * sizeof(float));
    off += m.size();
  }
}

template <bool kValues>
void unflatten_impl(const std::vector<float>& in, const std::vector<Parameter*>& params) {
  DT_CHECK_EQ(in.size(), flat_size(params));
  std::size_t off = 0;
  for (Parameter* p : params) {
    Matrix& m = kValues ? p->value : p->grad;
    std::memcpy(m.data(), in.data() + off, m.size() * sizeof(float));
    off += m.size();
  }
}
}  // namespace

void flatten_values(const std::vector<Parameter*>& params, std::vector<float>& out) {
  flatten_impl<true>(params, out);
}
void flatten_grads(const std::vector<Parameter*>& params, std::vector<float>& out) {
  flatten_impl<false>(params, out);
}
void unflatten_values(const std::vector<float>& in, const std::vector<Parameter*>& params) {
  unflatten_impl<true>(in, params);
}
void unflatten_grads(const std::vector<float>& in, const std::vector<Parameter*>& params) {
  unflatten_impl<false>(in, params);
}

}  // namespace disttgl::nn
