#include "nn/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace disttgl::nn {

float link_prediction_loss(const Matrix& pos, const Matrix& neg, Matrix& dpos,
                           Matrix& dneg) {
  DT_CHECK_EQ(pos.cols(), 1u);
  DT_CHECK_GT(pos.rows(), 0u);
  dpos.resize(pos.rows(), pos.cols());
  dneg.resize(neg.rows(), neg.cols());

  double loss = 0.0;
  const float inv_pos = 1.0f / static_cast<float>(pos.rows());
  for (std::size_t r = 0; r < pos.rows(); ++r) {
    const float x = pos(r, 0);
    loss -= log_sigmoid(x) * inv_pos;
    dpos(r, 0) = (stable_sigmoid(x) - 1.0f) * inv_pos;  // d(-logσ(x))/dx
  }
  if (neg.size() > 0) {
    const float inv_neg = 1.0f / static_cast<float>(neg.size());
    for (std::size_t i = 0; i < neg.size(); ++i) {
      const float x = neg.data()[i];
      loss -= log_sigmoid(-x) * inv_neg;
      dneg.data()[i] = stable_sigmoid(x) * inv_neg;  // d(-logσ(-x))/dx
    }
  }
  return static_cast<float>(loss);
}

float multilabel_bce_loss(const Matrix& logits, const Matrix& targets,
                          Matrix& dlogits) {
  DT_CHECK(logits.same_shape(targets));
  DT_CHECK_GT(logits.size(), 0u);
  dlogits.resize(logits.rows(), logits.cols());
  double loss = 0.0;
  const float inv = 1.0f / static_cast<float>(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float x = logits.data()[i];
    const float t = targets.data()[i];
    // BCE with logits: -t logσ(x) - (1-t) logσ(-x).
    loss -= (t * log_sigmoid(x) + (1.0f - t) * log_sigmoid(-x)) * inv;
    dlogits.data()[i] = (stable_sigmoid(x) - t) * inv;
  }
  return static_cast<float>(loss);
}

}  // namespace disttgl::nn
