// Parameter and Module: the tiny autograd-less NN core.
//
// DistTGL's model is small and fixed-shape, so instead of a tape-based
// autograd we hand-write each layer's backward pass. Layers follow a
// functional convention:
//
//   Matrix forward(inputs..., Ctx* ctx) const   — pure w.r.t. the layer;
//       activations needed by backward are stored in the caller-owned Ctx
//       so a layer can be applied several times per iteration (positive +
//       negative branches) without cache aliasing.
//   Matrix backward(const Ctx&, const Matrix& dy) — accumulates parameter
//       gradients (+=) and returns input gradients.
//
// Parameters expose flat (de)serialization so the distributed substrate
// can allreduce gradients / broadcast weights as contiguous buffers,
// mirroring what NCCL does with fused tensors.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace disttgl::nn {

struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }
  std::size_t size() const { return value.size(); }
};

class Module {
 public:
  virtual ~Module() = default;

  // Append pointers to every learnable parameter owned by this module.
  virtual void collect_parameters(std::vector<Parameter*>& out) = 0;

  std::vector<Parameter*> parameters();
  // The parameter set is fixed once a module is built (no layer in this
  // codebase adds parameters after construction), so per-iteration
  // callers — zero_grad, the trainers' flatten/unflatten loops — walk
  // this lazily-built cached list instead of re-collecting, which would
  // heap-allocate every call. The reference stays valid for the
  // module's lifetime.
  const std::vector<Parameter*>& cached_parameters();
  void zero_grad();
  std::size_t num_parameters();

 private:
  std::vector<Parameter*> param_cache_;
};

// ---- flat-buffer helpers over a parameter set (for comm / checkpoints) ----

// Total element count across parameters.
std::size_t flat_size(const std::vector<Parameter*>& params);
// Copy all parameter values into `out` (resized as needed).
void flatten_values(const std::vector<Parameter*>& params, std::vector<float>& out);
// Copy all parameter gradients into `out`.
void flatten_grads(const std::vector<Parameter*>& params, std::vector<float>& out);
// Overwrite parameter values from a flat buffer.
void unflatten_values(const std::vector<float>& in, const std::vector<Parameter*>& params);
// Overwrite parameter gradients from a flat buffer.
void unflatten_grads(const std::vector<float>& in, const std::vector<Parameter*>& params);

}  // namespace disttgl::nn
