// Parameter and Module: the tiny autograd-less NN core.
//
// DistTGL's model is small and fixed-shape, so instead of a tape-based
// autograd we hand-write each layer's backward pass. Layers follow a
// functional convention:
//
//   Matrix forward(inputs..., Ctx* ctx) const   — pure w.r.t. the layer;
//       activations needed by backward are stored in the caller-owned Ctx
//       so a layer can be applied several times per iteration (positive +
//       negative branches) without cache aliasing.
//   Matrix backward(const Ctx&, const Matrix& dy) — accumulates parameter
//       gradients (+=) and returns input gradients.
//
// Parameters expose flat (de)serialization so the distributed substrate
// can allreduce gradients / broadcast weights as contiguous buffers,
// mirroring what NCCL does with fused tensors.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace disttgl::nn {

struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }
  std::size_t size() const { return value.size(); }
};

class Module {
 public:
  virtual ~Module() = default;

  // Append pointers to every learnable parameter owned by this module.
  virtual void collect_parameters(std::vector<Parameter*>& out) = 0;

  std::vector<Parameter*> parameters();
  // The parameter set is fixed once a module is built (no layer in this
  // codebase adds parameters after construction), so per-iteration
  // callers — zero_grad, the trainers' flatten/unflatten loops — walk
  // this lazily-built cached list instead of re-collecting, which would
  // heap-allocate every call. The reference stays valid for the
  // module's lifetime.
  const std::vector<Parameter*>& cached_parameters();
  void zero_grad();
  std::size_t num_parameters();

  // ---- flat parameter storage (the gradient-sync layer's feed) ----
  //
  // Re-bases every parameter's value and grad matrix to be a view into
  // one of two contiguous buffers owned by the module (current contents
  // preserved), so per-iteration consumers of "all parameters as one
  // buffer" — the gradient allreduce, weight export, checkpointing —
  // become span handoffs instead of flatten/unflatten copy loops. The
  // flat layout is exactly the flatten_values/flatten_grads order, so
  // flat and non-flat modules serialize identically. Every
  // Parameter-based API keeps working (the matrices only change where
  // their elements live). Call once after construction; idempotent.
  void freeze_flat_storage();
  bool has_flat_storage() const { return frozen_; }
  // Read-only counterpart of freeze_flat_storage: re-points every
  // parameter's *value* matrix at `storage` (flatten_values order, no
  // copy in either direction), so a scorer replica reads its weights
  // straight out of an externally owned immutable buffer — e.g. a
  // published ServingSnapshot shared by many reader threads. Gradients
  // keep their own storage (inference never touches them). The caller
  // owns `storage` and its lifetime; rebinding to a different buffer is
  // just another call, and after the first call the swap touches no
  // heap — which is what keeps snapshot installs invisible to the
  // allocation-free score path.
  void bind_external_values(const float* storage);
  // Contiguous all-parameter spans; empty until freeze_flat_storage().
  std::span<float> flat_values() { return flat_values_; }
  std::span<float> flat_grads() { return flat_grads_; }
  std::span<const float> flat_values() const { return flat_values_; }
  std::span<const float> flat_grads() const { return flat_grads_; }

 private:
  std::vector<Parameter*> param_cache_;
  std::vector<float> flat_values_;
  std::vector<float> flat_grads_;
  bool frozen_ = false;
};

// ---- flat-buffer helpers over a parameter set (for comm / checkpoints) ----
// These work on any parameter set, flat-frozen or not (views read/write
// through to the flat buffers).

// Total element count across parameters.
std::size_t flat_size(const std::vector<Parameter*>& params);
// Copy all parameter values into `out` (resized as needed).
void flatten_values(const std::vector<Parameter*>& params, std::vector<float>& out);
// Overwrite parameter values from a flat buffer. (The gradient
// counterparts of these helpers are gone: both trainers now hand the
// collective the module's flat gradient buffer directly.)
void unflatten_values(std::span<const float> in, const std::vector<Parameter*>& params);

}  // namespace disttgl::nn
