#include "nn/predictor.hpp"

#include "tensor/ops.hpp"

namespace disttgl::nn {

EdgePredictor::EdgePredictor(std::string name, std::size_t emb_dim,
                             std::size_t hidden_dim, Rng& rng)
    : l1_(name + ".l1", 2 * emb_dim, hidden_dim, rng),
      l2_(name + ".l2", hidden_dim, 1, rng),
      emb_dim_(emb_dim) {}

Matrix EdgePredictor::forward(const Matrix& src, const Matrix& dst, Ctx* ctx) const {
  DT_CHECK(ctx != nullptr);
  DT_CHECK_EQ(src.cols(), emb_dim_);
  DT_CHECK(src.same_shape(dst));
  Matrix x = Matrix::concat_cols(src, dst);
  ctx->hidden = relu(l1_.forward(x, &ctx->l1_ctx));
  return l2_.forward(ctx->hidden, &ctx->l2_ctx);
}

EdgePredictor::InputGrads EdgePredictor::backward(const Ctx& ctx,
                                                  const Matrix& dscores) {
  Matrix dhid = l2_.backward(ctx.l2_ctx, dscores);
  dhid = relu_backward(ctx.hidden, dhid);
  Matrix dx = l1_.backward(ctx.l1_ctx, dhid);
  InputGrads g;
  g.dsrc = dx.slice_cols(0, emb_dim_);
  g.ddst = dx.slice_cols(emb_dim_, 2 * emb_dim_);
  return g;
}

void EdgePredictor::collect_parameters(std::vector<Parameter*>& out) {
  l1_.collect_parameters(out);
  l2_.collect_parameters(out);
}

EdgeClassifier::EdgeClassifier(std::string name, std::size_t emb_dim,
                               std::size_t hidden_dim, std::size_t num_classes,
                               Rng& rng)
    : l1_(name + ".l1", 2 * emb_dim, hidden_dim, rng),
      l2_(name + ".l2", hidden_dim, num_classes, rng),
      emb_dim_(emb_dim) {}

Matrix EdgeClassifier::forward(const Matrix& src, const Matrix& dst,
                               Ctx* ctx) const {
  DT_CHECK(ctx != nullptr);
  DT_CHECK_EQ(src.cols(), emb_dim_);
  DT_CHECK(src.same_shape(dst));
  Matrix x = Matrix::concat_cols(src, dst);
  ctx->hidden = relu(l1_.forward(x, &ctx->l1_ctx));
  return l2_.forward(ctx->hidden, &ctx->l2_ctx);
}

EdgeClassifier::InputGrads EdgeClassifier::backward(const Ctx& ctx,
                                                    const Matrix& dlogits) {
  Matrix dhid = l2_.backward(ctx.l2_ctx, dlogits);
  dhid = relu_backward(ctx.hidden, dhid);
  Matrix dx = l1_.backward(ctx.l1_ctx, dhid);
  InputGrads g;
  g.dsrc = dx.slice_cols(0, emb_dim_);
  g.ddst = dx.slice_cols(emb_dim_, 2 * emb_dim_);
  return g;
}

void EdgeClassifier::collect_parameters(std::vector<Parameter*>& out) {
  l1_.collect_parameters(out);
  l2_.collect_parameters(out);
}

}  // namespace disttgl::nn
