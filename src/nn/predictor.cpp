#include "nn/predictor.hpp"

#include "tensor/ops.hpp"

namespace disttgl::nn {

EdgePredictor::EdgePredictor(std::string name, std::size_t emb_dim,
                             std::size_t hidden_dim, Rng& rng)
    : l1_(name + ".l1", 2 * emb_dim, hidden_dim, rng),
      l2_(name + ".l2", hidden_dim, 1, rng),
      emb_dim_(emb_dim) {}

Matrix EdgePredictor::forward(const Matrix& src, const Matrix& dst,
                              Ctx* ctx) const {
  Matrix out;
  forward_into(src, dst, ctx, out);
  return out;
}

void EdgePredictor::forward_into(const Matrix& src, const Matrix& dst, Ctx* ctx,
                                 Matrix& out) const {
  DT_CHECK(ctx != nullptr);
  DT_CHECK_EQ(src.cols(), emb_dim_);
  DT_CHECK(src.same_shape(dst));
  Matrix::concat_cols_into(src, dst, ctx->x);
  l1_.forward_into(ctx->x, &ctx->l1_ctx, ctx->hidden);
  relu_inplace(ctx->hidden);
  l2_.forward_into(ctx->hidden, &ctx->l2_ctx, out);
}

EdgePredictor::InputGrads EdgePredictor::backward(Ctx& ctx,
                                                  const Matrix& dscores) {
  InputGrads grads;
  backward_into(ctx, dscores, grads);
  return grads;
}

void EdgePredictor::backward_into(Ctx& ctx, const Matrix& dscores,
                                  InputGrads& grads) {
  l2_.backward_into(ctx.l2_ctx, dscores, ctx.dhid);
  relu_backward_into(ctx.hidden, ctx.dhid, ctx.dhid);  // aliasing-safe
  l1_.backward_into(ctx.l1_ctx, ctx.dhid, ctx.dx);
  ctx.dx.slice_cols_into(0, emb_dim_, grads.dsrc);
  ctx.dx.slice_cols_into(emb_dim_, 2 * emb_dim_, grads.ddst);
}

void EdgePredictor::collect_parameters(std::vector<Parameter*>& out) {
  l1_.collect_parameters(out);
  l2_.collect_parameters(out);
}

EdgeClassifier::EdgeClassifier(std::string name, std::size_t emb_dim,
                               std::size_t hidden_dim, std::size_t num_classes,
                               Rng& rng)
    : l1_(name + ".l1", 2 * emb_dim, hidden_dim, rng),
      l2_(name + ".l2", hidden_dim, num_classes, rng),
      emb_dim_(emb_dim) {}

Matrix EdgeClassifier::forward(const Matrix& src, const Matrix& dst,
                               Ctx* ctx) const {
  Matrix out;
  forward_into(src, dst, ctx, out);
  return out;
}

void EdgeClassifier::forward_into(const Matrix& src, const Matrix& dst, Ctx* ctx,
                                  Matrix& out) const {
  DT_CHECK(ctx != nullptr);
  DT_CHECK_EQ(src.cols(), emb_dim_);
  DT_CHECK(src.same_shape(dst));
  Matrix::concat_cols_into(src, dst, ctx->x);
  l1_.forward_into(ctx->x, &ctx->l1_ctx, ctx->hidden);
  relu_inplace(ctx->hidden);
  l2_.forward_into(ctx->hidden, &ctx->l2_ctx, out);
}

EdgeClassifier::InputGrads EdgeClassifier::backward(Ctx& ctx,
                                                    const Matrix& dlogits) {
  InputGrads grads;
  backward_into(ctx, dlogits, grads);
  return grads;
}

void EdgeClassifier::backward_into(Ctx& ctx, const Matrix& dlogits,
                                   InputGrads& grads) {
  l2_.backward_into(ctx.l2_ctx, dlogits, ctx.dhid);
  relu_backward_into(ctx.hidden, ctx.dhid, ctx.dhid);  // aliasing-safe
  l1_.backward_into(ctx.l1_ctx, ctx.dhid, ctx.dx);
  ctx.dx.slice_cols_into(0, emb_dim_, grads.dsrc);
  ctx.dx.slice_cols_into(emb_dim_, 2 * emb_dim_, grads.ddst);
}

void EdgeClassifier::collect_parameters(std::vector<Parameter*>& out) {
  l1_.collect_parameters(out);
  l2_.collect_parameters(out);
}

}  // namespace disttgl::nn
