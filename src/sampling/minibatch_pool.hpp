// Recycled MiniBatch buffers.
//
// Batch construction is steady-state allocation-free only if the target
// MiniBatch keeps its capacity between uses; the pool is where retired
// batches park that capacity. acquire() pops a free slot — or creates
// one when none is free, the only allocating path, which stops firing
// once the population reaches the pipeline's high-water mark
// (ahead-in-flight + what the trainer holds). Handles are RAII: a
// PooledBatch returns its buffer on destruction, so "release back to
// the pool" is just dropping the handle, and `outstanding()` lets tests
// assert that checkouts balance.
//
// Thread-safe: prefetch workers acquire while the trainer releases.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "sampling/minibatch.hpp"

namespace disttgl {

class MiniBatchPool;

// Move-only handle to a MiniBatch buffer. Usually pool-owned; a handle
// may instead own a free-standing heap batch (adopt()), which is how the
// legacy allocate-per-batch pipeline mode flows through the same APIs.
class PooledBatch {
 public:
  PooledBatch() = default;
  ~PooledBatch() { release(); }
  PooledBatch(PooledBatch&& o) noexcept
      : batch_(o.batch_), pool_(o.pool_), owned_(std::move(o.owned_)) {
    o.batch_ = nullptr;
    o.pool_ = nullptr;
  }
  PooledBatch& operator=(PooledBatch&& o) noexcept {
    if (this != &o) {
      release();
      batch_ = o.batch_;
      pool_ = o.pool_;
      owned_ = std::move(o.owned_);
      o.batch_ = nullptr;
      o.pool_ = nullptr;
    }
    return *this;
  }
  PooledBatch(const PooledBatch&) = delete;
  PooledBatch& operator=(const PooledBatch&) = delete;

  explicit operator bool() const { return batch_ != nullptr; }
  bool has_value() const { return batch_ != nullptr; }
  MiniBatch& operator*() const { return *batch_; }
  MiniBatch* operator->() const { return batch_; }
  MiniBatch* get() const { return batch_; }

  // Returns the buffer to its pool (or frees it) and empties the handle.
  void release();

  // Wraps a free-standing batch; released by deletion, not pooling.
  static PooledBatch adopt(std::unique_ptr<MiniBatch> b) {
    PooledBatch h;
    h.batch_ = b.get();
    h.owned_ = std::move(b);
    return h;
  }

 private:
  friend class MiniBatchPool;
  PooledBatch(MiniBatch* b, MiniBatchPool* p) : batch_(b), pool_(p) {}

  MiniBatch* batch_ = nullptr;
  MiniBatchPool* pool_ = nullptr;           // null for adopted batches
  std::unique_ptr<MiniBatch> owned_;        // set for adopted batches
};

class MiniBatchPool {
 public:
  // Pre-creates `initial_slots` buffers (0 = grow purely on demand).
  explicit MiniBatchPool(std::size_t initial_slots = 0);
  ~MiniBatchPool();  // asserts every handle was returned

  MiniBatchPool(const MiniBatchPool&) = delete;
  MiniBatchPool& operator=(const MiniBatchPool&) = delete;

  // Never blocks: recycles a free buffer or creates a new slot.
  PooledBatch acquire();

  // Total slots ever created (= the pipeline's high-water mark once the
  // steady state is reached).
  std::size_t created() const;
  // Handles currently checked out.
  std::size_t outstanding() const;

 private:
  friend class PooledBatch;
  void put_back(MiniBatch* b);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MiniBatch>> slots_;
  std::vector<MiniBatch*> free_;
  std::size_t outstanding_ = 0;
};

}  // namespace disttgl
