#include "sampling/neighbor_sampler.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace disttgl {

std::size_t NeighborSampler::sample(NodeId node, float t,
                                    std::span<NeighborSample> out) const {
  DT_CHECK_GE(out.size(), k_);
  const auto incident = graph_->incident(node);
  const std::size_t end = graph_->events_before(node, t);
  const std::size_t n = std::min(k_, end);
  for (std::size_t i = 0; i < n; ++i) {
    const EdgeId id = incident[end - 1 - i];  // newest first
    const TemporalEdge& e = graph_->event(id);
    out[i].neighbor = e.src == node ? e.dst : e.src;
    out[i].edge = id;
    out[i].ts = e.ts;
  }
  return n;
}

void NeighborSampler::sample_range(SampledRoots& out, std::size_t lo,
                                   std::size_t hi) const {
  const std::size_t K = k_;
  for (std::size_t r = lo; r < hi; ++r) {
    const NodeId node = out.nodes[r];
    const float t = out.ts[r];
    const auto incident = graph_->incident(node);
    const std::size_t end = graph_->events_before(node, t);
    const std::size_t n = std::min(K, end);
    out.valid[r] = n;
    NodeId* nn = out.neigh_node.data() + r * K;
    EdgeId* ne = out.neigh_edge.data() + r * K;
    float* nd = out.neigh_dt.data() + r * K;
    for (std::size_t i = 0; i < n; ++i) {
      const EdgeId id = incident[end - 1 - i];  // newest first
      const TemporalEdge& e = graph_->event(id);
      nn[i] = e.src == node ? e.dst : e.src;
      ne[i] = id;
      nd[i] = t - e.ts;
    }
  }
}

void NeighborSampler::sample_many(SampledRoots& out, ThreadPool* pool) const {
  DT_CHECK_EQ(out.nodes.size(), out.ts.size());
  const std::size_t R = out.nodes.size();
  const std::size_t K = k_;
  out.k = K;
  // assign() refills in place: values reset every batch, capacity kept.
  out.neigh_node.assign(R * K, kInvalidNode);
  out.neigh_edge.assign(R * K, kInvalidEdge);
  out.neigh_dt.assign(R * K, 0.0f);
  out.valid.assign(R, 0);
  if (R == 0) return;

  // Roots are cheap to sample (two binary searches + K copies), so only
  // fan out when ranges are big enough to cover the handoff cost.
  constexpr std::size_t kGrain = 256;
  const std::size_t max_chunks = pool != nullptr ? pool->size() * 4 : 1;
  const std::size_t chunks =
      std::min(max_chunks, (R + kGrain - 1) / kGrain);
  if (pool == nullptr || chunks <= 1) {
    sample_range(out, 0, R);
    return;
  }
  const std::size_t per = (R + chunks - 1) / chunks;
  pool->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(lo + per, R);
    if (lo < hi) sample_range(out, lo, hi);
  });
}

}  // namespace disttgl
