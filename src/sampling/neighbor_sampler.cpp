#include "sampling/neighbor_sampler.hpp"

namespace disttgl {

std::size_t NeighborSampler::sample(NodeId node, float t,
                                    std::span<NeighborSample> out) const {
  DT_CHECK_GE(out.size(), k_);
  const auto incident = graph_->incident(node);
  const std::size_t end = graph_->events_before(node, t);
  const std::size_t n = std::min(k_, end);
  for (std::size_t i = 0; i < n; ++i) {
    const EdgeId id = incident[end - 1 - i];  // newest first
    const TemporalEdge& e = graph_->event(id);
    out[i].neighbor = e.src == node ? e.dst : e.src;
    out[i].edge = id;
    out[i].ts = e.ts;
  }
  return n;
}

}  // namespace disttgl
