// Most-recent-K temporal neighbor sampling.
//
// TGN-attn's aggregator attends over the K most recent events incident
// to a node before the query time (the paper uses K = 10). Thanks to the
// node memory, one layer with recent neighbors is sufficient (§1), so
// this sampler is single-hop. Thread-safe: reads only immutable graph
// state, so the prefetcher can run it from worker threads.
#pragma once

#include "graph/temporal_graph.hpp"

namespace disttgl {

struct NeighborSample {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  float ts = 0.0f;
};

class NeighborSampler {
 public:
  NeighborSampler(const TemporalGraph& graph, std::size_t k)
      : graph_(&graph), k_(k) {
    DT_CHECK_GT(k, 0u);
  }

  std::size_t k() const { return k_; }

  // Most recent `k` events incident to `node` strictly before `t`,
  // newest first. Returns the number written to `out` (≤ k).
  std::size_t sample(NodeId node, float t, std::span<NeighborSample> out) const;

 private:
  const TemporalGraph* graph_;
  std::size_t k_;
};

}  // namespace disttgl
