// Most-recent-K temporal neighbor sampling.
//
// TGN-attn's aggregator attends over the K most recent events incident
// to a node before the query time (the paper uses K = 10). Thanks to the
// node memory, one layer with recent neighbors is sufficient (§1), so
// this sampler is single-hop. Thread-safe: reads only immutable graph
// state, so prefetch workers can run it concurrently.
#pragma once

#include "graph/temporal_graph.hpp"

namespace disttgl {

class ThreadPool;

struct NeighborSample {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  float ts = 0.0f;
};

// Arena of batch roots and their neighbor windows, laid out as flat
// [R] / [R*K] arrays. Caller-owned and recycled across batches: every
// buffer reuses its capacity, so steady-state refills allocate nothing.
struct SampledRoots {
  std::size_t k = 0;                    // neighbor window capacity
  std::vector<NodeId> nodes;            // [R]
  std::vector<float> ts;                // [R] query times
  std::vector<NodeId> neigh_node;       // [R*K]
  std::vector<EdgeId> neigh_edge;       // [R*K]
  std::vector<float> neigh_dt;          // [R*K] query_ts − event_ts
  std::vector<std::size_t> valid;       // [R]

  std::size_t size() const { return nodes.size(); }

  // Empties the root list, keeping capacity.
  void clear() {
    nodes.clear();
    ts.clear();
  }
};

class NeighborSampler {
 public:
  NeighborSampler(const TemporalGraph& graph, std::size_t k)
      : graph_(&graph), k_(k) {
    DT_CHECK_GT(k, 0u);
  }

  std::size_t k() const { return k_; }

  // Most recent `k` events incident to `node` strictly before `t`,
  // newest first. Returns the number written to `out` (≤ k).
  std::size_t sample(NodeId node, float t, std::span<NeighborSample> out) const;

  // Batched form: fills the neighbor windows for every root already
  // staged in `out.nodes` / `out.ts` (one pass over the whole batch).
  // Window arrays are (re)sized in place — allocation-free once their
  // capacity covers the batch shape. When `pool` is non-null, root
  // ranges fan out over it via parallel_for; each range writes disjoint
  // rows, so the result is identical for every thread count.
  void sample_many(SampledRoots& out, ThreadPool* pool = nullptr) const;

 private:
  void sample_range(SampledRoots& out, std::size_t lo, std::size_t hi) const;

  const TemporalGraph* graph_;
  std::size_t k_;
};

}  // namespace disttgl
