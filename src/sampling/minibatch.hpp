// Mini-batch layout and construction.
//
// A mini-batch bundles everything a trainer needs for one iteration: the
// positive edge events (a chronological slice), sampled negative
// destinations, and — for every *root* (src, dst and negative nodes, each
// evaluated at its event time) — the most-recent-K neighbor window.
//
// Epoch parallelism (§3.2.2) trains the same positive batch j times with
// j different negative sets, but performs the node-memory read only once;
// the read must therefore cover every variant's nodes. A MiniBatch hence
// carries `neg_variants` independent negative sets, and the root list is
//
//   [src₀..srcₙ | dst₀..dstₙ | variant-0 negs | variant-1 negs | …]
//
// so version v of the batch uses roots {src, dst, variant-v negs}.
//
// `unique_nodes` deduplicates roots and neighbors: memory reads/writes
// and GRU updates operate per unique node, exactly once, which is what
// the daemon's indexed buffers carry (§3.3).
//
// Construction has two forms: the allocating `build()` convenience and
// the recycling `build_into()`, which rebuilds a caller-owned MiniBatch
// in place. Every buffer — event/root/negative arrays, neighbor
// windows, the dedup table — reuses its capacity, so once shapes have
// stabilized a MiniBatch cycled through a MiniBatchPool is refilled with
// zero heap allocations (tests/test_batch_alloc pins this).
#pragma once

#include <vector>

#include "sampling/negative_sampler.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace disttgl {

// Open-addressing NodeId → dense-index map recycled across batches. The
// table only grows (and clears in O(capacity) per reset), so batches of
// stable shape never touch the allocator. Replaces the per-build
// std::unordered_map whose node-per-insert allocations dominated the
// dedup phase.
class NodeIndexMap {
 public:
  // Clears, growing the table first if `expected_keys` inserts would
  // push the load factor past 1/2. More keys than expected are fine —
  // intern() rehashes at the load-factor bound (an allocation, but one
  // that stops recurring once the table has reached the batch shape's
  // high-water mark).
  void reset(std::size_t expected_keys);

  // Dense index of `v` in `uniq`, appending on first sight.
  std::size_t intern(NodeId v, std::vector<NodeId>& uniq) {
    std::size_t h = hash(v) & mask_;
    while (keys_[h] != kInvalidNode) {
      if (keys_[h] == v) return vals_[h];
      h = (h + 1) & mask_;
    }
    keys_[h] = v;
    vals_[h] = static_cast<std::uint32_t>(uniq.size());
    const std::size_t idx = vals_[h];
    uniq.push_back(v);
    if (++size_ * 2 > keys_.size()) grow();
    return idx;
  }

  std::size_t capacity() const { return keys_.size(); }

 private:
  static std::size_t hash(NodeId v) {
    std::uint64_t x = static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(x >> 32);
  }
  void grow();  // doubles the table and rehashes every resident key

  std::vector<NodeId> keys_;        // kInvalidNode marks an empty slot
  std::vector<std::uint32_t> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

struct MiniBatch {
  std::size_t batch_idx = 0;
  // Positive events.
  std::vector<EdgeId> events;
  std::vector<NodeId> src, dst;
  std::vector<float> ts;
  // Negatives: `neg_variants` sets of num_neg-per-positive, flattened as
  // [variant][positive][q].
  std::size_t num_neg = 1;
  std::size_t neg_variants = 1;
  std::vector<NodeId> neg_dst;

  SampledRoots roots;  // [src | dst | negs×variants] with neighbor windows

  // Unique node set = roots ∪ neighbors; indices below map into it.
  std::vector<NodeId> unique_nodes;
  std::vector<std::size_t> root_to_unique;   // [R]
  std::vector<std::size_t> neigh_to_unique;  // [R*K] (undefined past valid)

  // Build scratch, recycled with the batch (a pooled batch keeps its own
  // dedup table so concurrent builds share nothing).
  NodeIndexMap dedup;

  std::size_t num_pos() const { return events.size(); }
  std::size_t num_roots() const { return roots.size(); }
  // Row ranges of each root section.
  std::size_t src_begin() const { return 0; }
  std::size_t dst_begin() const { return num_pos(); }
  // First negative root row of variant v.
  std::size_t neg_begin(std::size_t v) const {
    return num_pos() * 2 + v * num_pos() * num_neg;
  }
};

class MiniBatchBuilder {
 public:
  // `sampler_pool`, when non-null, parallelizes the neighbor-window pass
  // of every build over its workers (output independent of thread
  // count). All referenced objects must outlive the builder.
  MiniBatchBuilder(const TemporalGraph& graph, const NeighborSampler& sampler,
                   const NegativeSampler& negatives, std::size_t num_neg,
                   ThreadPool* sampler_pool = nullptr);

  // Rebuilds `out` in place for events [begin, end); one negative set
  // per entry of `neg_groups` (empty → no negatives, e.g. edge
  // classification). Pure function of its arguments plus `out`'s
  // capacity — safe from any thread as long as each thread targets a
  // distinct `out`.
  void build_into(std::size_t batch_idx, std::size_t begin, std::size_t end,
                  std::span<const std::size_t> neg_groups,
                  MiniBatch& out) const;

  // Allocating convenience; identical contents to build_into.
  MiniBatch build(std::size_t batch_idx, std::size_t begin, std::size_t end,
                  std::span<const std::size_t> neg_groups) const {
    MiniBatch mb;
    build_into(batch_idx, begin, end, neg_groups, mb);
    return mb;
  }

  // Single-variant convenience.
  MiniBatch build(std::size_t batch_idx, std::size_t begin, std::size_t end,
                  std::size_t neg_group) const {
    const std::size_t groups[1] = {neg_group};
    return build(batch_idx, begin, end, groups);
  }

  std::size_t num_neg() const { return num_neg_; }
  const TemporalGraph& graph() const { return *graph_; }
  ThreadPool* sampler_pool() const { return sampler_pool_; }

 private:
  const TemporalGraph* graph_;
  const NeighborSampler* sampler_;
  const NegativeSampler* negatives_;
  std::size_t num_neg_;
  ThreadPool* sampler_pool_;
};

}  // namespace disttgl
