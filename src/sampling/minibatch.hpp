// Mini-batch layout and construction.
//
// A mini-batch bundles everything a trainer needs for one iteration: the
// positive edge events (a chronological slice), sampled negative
// destinations, and — for every *root* (src, dst and negative nodes, each
// evaluated at its event time) — the most-recent-K neighbor window.
//
// Epoch parallelism (§3.2.2) trains the same positive batch j times with
// j different negative sets, but performs the node-memory read only once;
// the read must therefore cover every variant's nodes. A MiniBatch hence
// carries `neg_variants` independent negative sets, and the root list is
//
//   [src₀..srcₙ | dst₀..dstₙ | variant-0 negs | variant-1 negs | …]
//
// so version v of the batch uses roots {src, dst, variant-v negs}.
//
// `unique_nodes` deduplicates roots and neighbors: memory reads/writes
// and GRU updates operate per unique node, exactly once, which is what
// the daemon's indexed buffers carry (§3.3).
#pragma once

#include <vector>

#include "sampling/negative_sampler.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace disttgl {

struct SampledRoots {
  std::size_t k = 0;                    // neighbor window capacity
  std::vector<NodeId> nodes;            // [R]
  std::vector<float> ts;                // [R] query times
  std::vector<NodeId> neigh_node;       // [R*K]
  std::vector<EdgeId> neigh_edge;       // [R*K]
  std::vector<float> neigh_dt;          // [R*K] query_ts − event_ts
  std::vector<std::size_t> valid;       // [R]

  std::size_t size() const { return nodes.size(); }
};

struct MiniBatch {
  std::size_t batch_idx = 0;
  // Positive events.
  std::vector<EdgeId> events;
  std::vector<NodeId> src, dst;
  std::vector<float> ts;
  // Negatives: `neg_variants` sets of num_neg-per-positive, flattened as
  // [variant][positive][q].
  std::size_t num_neg = 1;
  std::size_t neg_variants = 1;
  std::vector<NodeId> neg_dst;

  SampledRoots roots;  // [src | dst | negs×variants] with neighbor windows

  // Unique node set = roots ∪ neighbors; indices below map into it.
  std::vector<NodeId> unique_nodes;
  std::vector<std::size_t> root_to_unique;   // [R]
  std::vector<std::size_t> neigh_to_unique;  // [R*K] (undefined past valid)

  std::size_t num_pos() const { return events.size(); }
  std::size_t num_roots() const { return roots.size(); }
  // Row ranges of each root section.
  std::size_t src_begin() const { return 0; }
  std::size_t dst_begin() const { return num_pos(); }
  // First negative root row of variant v.
  std::size_t neg_begin(std::size_t v) const {
    return num_pos() * 2 + v * num_pos() * num_neg;
  }
};

class MiniBatchBuilder {
 public:
  MiniBatchBuilder(const TemporalGraph& graph, const NeighborSampler& sampler,
                   const NegativeSampler& negatives, std::size_t num_neg);

  // Builds the batch for events [begin, end); one negative set per entry
  // of `neg_groups` (empty → no negatives, e.g. edge classification).
  // Pure function of its arguments — safe from any thread.
  MiniBatch build(std::size_t batch_idx, std::size_t begin, std::size_t end,
                  std::span<const std::size_t> neg_groups) const;

  // Single-variant convenience.
  MiniBatch build(std::size_t batch_idx, std::size_t begin, std::size_t end,
                  std::size_t neg_group) const {
    const std::size_t groups[1] = {neg_group};
    return build(batch_idx, begin, end, groups);
  }

  std::size_t num_neg() const { return num_neg_; }
  const TemporalGraph& graph() const { return *graph_; }

 private:
  const TemporalGraph* graph_;
  const NeighborSampler* sampler_;
  const NegativeSampler* negatives_;
  std::size_t num_neg_;
};

}  // namespace disttgl
