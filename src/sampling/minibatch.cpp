#include "sampling/minibatch.hpp"

#include <unordered_map>

namespace disttgl {

MiniBatchBuilder::MiniBatchBuilder(const TemporalGraph& graph,
                                   const NeighborSampler& sampler,
                                   const NegativeSampler& negatives,
                                   std::size_t num_neg)
    : graph_(&graph),
      sampler_(&sampler),
      negatives_(&negatives),
      num_neg_(num_neg) {}

MiniBatch MiniBatchBuilder::build(std::size_t batch_idx, std::size_t begin,
                                  std::size_t end,
                                  std::span<const std::size_t> neg_groups) const {
  DT_CHECK_LT(begin, end);
  DT_CHECK_LE(end, graph_->num_events());

  MiniBatch mb;
  mb.batch_idx = batch_idx;
  mb.num_neg = num_neg_;
  mb.neg_variants = neg_groups.size();
  const std::size_t n = end - begin;
  mb.events.reserve(n);
  mb.src.reserve(n);
  mb.dst.reserve(n);
  mb.ts.reserve(n);
  for (std::size_t i = begin; i < end; ++i) {
    const TemporalEdge& e = graph_->event(static_cast<EdgeId>(i));
    mb.events.push_back(e.id);
    mb.src.push_back(e.src);
    mb.dst.push_back(e.dst);
    mb.ts.push_back(e.ts);
  }
  const std::size_t negs_per_variant = n * num_neg_;
  mb.neg_dst.reserve(negs_per_variant * mb.neg_variants);
  for (std::size_t v = 0; v < mb.neg_variants; ++v) {
    auto negs = negatives_->sample(neg_groups[v], batch_idx, negs_per_variant);
    mb.neg_dst.insert(mb.neg_dst.end(), negs.begin(), negs.end());
  }

  // Assemble roots: [src | dst | variant negs…], each at its positive
  // event's timestamp.
  const std::size_t R = n * 2 + mb.neg_dst.size();
  const std::size_t K = sampler_->k();
  SampledRoots& roots = mb.roots;
  roots.k = K;
  roots.nodes.reserve(R);
  roots.ts.reserve(R);
  for (std::size_t i = 0; i < n; ++i) {
    roots.nodes.push_back(mb.src[i]);
    roots.ts.push_back(mb.ts[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    roots.nodes.push_back(mb.dst[i]);
    roots.ts.push_back(mb.ts[i]);
  }
  for (std::size_t v = 0; v < mb.neg_variants; ++v) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t q = 0; q < num_neg_; ++q) {
        roots.nodes.push_back(mb.neg_dst[v * negs_per_variant + i * num_neg_ + q]);
        roots.ts.push_back(mb.ts[i]);
      }
    }
  }
  DT_CHECK_EQ(roots.nodes.size(), R);

  roots.neigh_node.assign(R * K, kInvalidNode);
  roots.neigh_edge.assign(R * K, kInvalidEdge);
  roots.neigh_dt.assign(R * K, 0.0f);
  roots.valid.assign(R, 0);
  std::vector<NeighborSample> buf(K);
  for (std::size_t r = 0; r < R; ++r) {
    const std::size_t cnt = sampler_->sample(roots.nodes[r], roots.ts[r], buf);
    roots.valid[r] = cnt;
    for (std::size_t k = 0; k < cnt; ++k) {
      roots.neigh_node[r * K + k] = buf[k].neighbor;
      roots.neigh_edge[r * K + k] = buf[k].edge;
      roots.neigh_dt[r * K + k] = roots.ts[r] - buf[k].ts;
    }
  }

  // Deduplicate roots ∪ neighbors into the unique node set.
  std::unordered_map<NodeId, std::size_t> index;
  index.reserve(R * 2);
  auto intern = [&](NodeId v) {
    auto [it, inserted] = index.emplace(v, mb.unique_nodes.size());
    if (inserted) mb.unique_nodes.push_back(v);
    return it->second;
  };
  mb.root_to_unique.resize(R);
  mb.neigh_to_unique.assign(R * K, 0);
  for (std::size_t r = 0; r < R; ++r) {
    mb.root_to_unique[r] = intern(roots.nodes[r]);
    for (std::size_t k = 0; k < roots.valid[r]; ++k)
      mb.neigh_to_unique[r * K + k] = intern(roots.neigh_node[r * K + k]);
  }
  return mb;
}

}  // namespace disttgl
