#include "sampling/minibatch.hpp"

#include <algorithm>

namespace disttgl {

void NodeIndexMap::reset(std::size_t expected_keys) {
  // Power-of-two table kept at most half full so probe chains stay short.
  std::size_t cap = keys_.size();
  if (cap < 16) cap = 16;
  while (cap < expected_keys * 2) cap *= 2;
  if (cap != keys_.size()) {
    keys_.resize(cap);
    vals_.resize(cap);
    mask_ = cap - 1;
  }
  std::fill(keys_.begin(), keys_.end(), kInvalidNode);
  size_ = 0;
}

void NodeIndexMap::grow() {
  std::vector<NodeId> old_keys(keys_.size() * 2, kInvalidNode);
  std::vector<std::uint32_t> old_vals(vals_.size() * 2);
  old_keys.swap(keys_);
  old_vals.swap(vals_);
  mask_ = keys_.size() - 1;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kInvalidNode) continue;
    std::size_t h = hash(old_keys[i]) & mask_;
    while (keys_[h] != kInvalidNode) h = (h + 1) & mask_;
    keys_[h] = old_keys[i];
    vals_[h] = old_vals[i];
  }
}

MiniBatchBuilder::MiniBatchBuilder(const TemporalGraph& graph,
                                   const NeighborSampler& sampler,
                                   const NegativeSampler& negatives,
                                   std::size_t num_neg,
                                   ThreadPool* sampler_pool)
    : graph_(&graph),
      sampler_(&sampler),
      negatives_(&negatives),
      num_neg_(num_neg),
      sampler_pool_(sampler_pool) {}

void MiniBatchBuilder::build_into(std::size_t batch_idx, std::size_t begin,
                                  std::size_t end,
                                  std::span<const std::size_t> neg_groups,
                                  MiniBatch& mb) const {
  DT_CHECK_LT(begin, end);
  DT_CHECK_LE(end, graph_->num_events());

  mb.batch_idx = batch_idx;
  mb.num_neg = num_neg_;
  mb.neg_variants = neg_groups.size();
  const std::size_t n = end - begin;
  mb.events.clear();
  mb.src.clear();
  mb.dst.clear();
  mb.ts.clear();
  mb.events.reserve(n);
  mb.src.reserve(n);
  mb.dst.reserve(n);
  mb.ts.reserve(n);
  for (std::size_t i = begin; i < end; ++i) {
    const TemporalEdge& e = graph_->event(static_cast<EdgeId>(i));
    mb.events.push_back(e.id);
    mb.src.push_back(e.src);
    mb.dst.push_back(e.dst);
    mb.ts.push_back(e.ts);
  }
  const std::size_t negs_per_variant = n * num_neg_;
  mb.neg_dst.clear();
  mb.neg_dst.reserve(negs_per_variant * mb.neg_variants);
  for (std::size_t v = 0; v < mb.neg_variants; ++v)
    negatives_->sample_into(neg_groups[v], batch_idx, negs_per_variant,
                            mb.neg_dst);

  // Stage roots: [src | dst | variant negs…], each at its positive
  // event's timestamp.
  const std::size_t R = n * 2 + mb.neg_dst.size();
  SampledRoots& roots = mb.roots;
  roots.clear();
  roots.nodes.reserve(R);
  roots.ts.reserve(R);
  for (std::size_t i = 0; i < n; ++i) {
    roots.nodes.push_back(mb.src[i]);
    roots.ts.push_back(mb.ts[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    roots.nodes.push_back(mb.dst[i]);
    roots.ts.push_back(mb.ts[i]);
  }
  for (std::size_t v = 0; v < mb.neg_variants; ++v) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t q = 0; q < num_neg_; ++q) {
        roots.nodes.push_back(
            mb.neg_dst[v * negs_per_variant + i * num_neg_ + q]);
        roots.ts.push_back(mb.ts[i]);
      }
    }
  }
  DT_CHECK_EQ(roots.nodes.size(), R);

  // One pass fills every root's neighbor window (fanned out over the
  // builder's pool when it has one).
  sampler_->sample_many(roots, sampler_pool_);
  const std::size_t K = roots.k;

  // Deduplicate roots ∪ neighbors into the unique node set. Serial on
  // purpose: first-seen order defines the unique-node indexing that the
  // memory read/write and GRU-update paths rely on.
  mb.unique_nodes.clear();
  mb.dedup.reset(R);
  mb.root_to_unique.resize(R);
  mb.neigh_to_unique.assign(R * K, 0);
  for (std::size_t r = 0; r < R; ++r) {
    mb.root_to_unique[r] = mb.dedup.intern(roots.nodes[r], mb.unique_nodes);
    for (std::size_t k = 0; k < roots.valid[r]; ++k)
      mb.neigh_to_unique[r * K + k] =
          mb.dedup.intern(roots.neigh_node[r * K + k], mb.unique_nodes);
  }
}

}  // namespace disttgl
