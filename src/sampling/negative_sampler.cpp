#include "sampling/negative_sampler.hpp"

#include "util/rng.hpp"

namespace disttgl {

NegativeSampler::NegativeSampler(const TemporalGraph& graph,
                                 std::size_t num_groups, std::uint64_t seed)
    : dst_begin_(graph.bipartite() ? graph.dst_partition_begin() : 0),
      dst_count_(graph.num_nodes() - dst_begin_),
      num_groups_(num_groups),
      seed_(seed) {
  DT_CHECK_GT(num_groups, 0u);
  DT_CHECK_GT(dst_count_, 0u);
}

std::vector<NodeId> NegativeSampler::sample(std::size_t group,
                                            std::size_t batch_idx,
                                            std::size_t count) const {
  std::vector<NodeId> out;
  out.reserve(count);
  sample_into(group, batch_idx, count, out);
  return out;
}

void NegativeSampler::sample_into(std::size_t group, std::size_t batch_idx,
                                  std::size_t count,
                                  std::vector<NodeId>& out) const {
  DT_CHECK_LT(group, num_groups_);
  // Mix (seed, group, batch) into one stream seed; constants are just
  // large odd multipliers to decorrelate the three coordinates.
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (group + 1)) ^
          (0xc2b2ae3d27d4eb4fULL * (batch_idx + 1)));
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(dst_begin_ +
                  static_cast<NodeId>(rng.uniform_int(dst_count_)));
}

}  // namespace disttgl
