// Chronological event splitting and batching.
//
// M-TGNN training requires mini-batches scheduled in chronological order
// (§2.1.1); train/val/test splits are chronological prefixes, as in TGN.
#pragma once

#include <vector>

#include "graph/temporal_graph.hpp"

namespace disttgl {

struct EventSplit {
  std::size_t train_begin = 0, train_end = 0;
  std::size_t val_end = 0;   // validation = [train_end, val_end)
  std::size_t test_end = 0;  // test = [val_end, test_end)

  std::size_t num_train() const { return train_end - train_begin; }
  std::size_t num_val() const { return val_end - train_end; }
  std::size_t num_test() const { return test_end - val_end; }
};

// Standard TGN split: first `train_frac` of events for training, next
// `val_frac` for validation, remainder for test.
EventSplit chronological_split(const TemporalGraph& g, double train_frac = 0.70,
                               double val_frac = 0.15);

struct BatchRange {
  std::size_t begin = 0, end = 0;
  std::size_t size() const { return end - begin; }
};

// Fixed-size chronological batches over [begin, end); the final partial
// batch is kept (dropping events would skew the node-memory stream).
std::vector<BatchRange> make_batches(std::size_t begin, std::size_t end,
                                     std::size_t batch_size);

}  // namespace disttgl
