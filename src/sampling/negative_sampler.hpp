// Grouped negative destination sampling.
//
// The paper prepares a small number of negative-edge groups (10) and
// reuses them across epochs (§4.0.2); epoch parallelism depends on being
// able to draw *different* negative groups for the same positive batch.
// Sampling is a pure function of (seed, group, batch index), so any
// trainer — or the prefetch daemon — regenerates identical negatives
// without communication.
#pragma once

#include <vector>

#include "graph/temporal_graph.hpp"

namespace disttgl {

class NegativeSampler {
 public:
  // For bipartite graphs, negatives are drawn from the destination
  // partition only (matching the paper's protocol).
  NegativeSampler(const TemporalGraph& graph, std::size_t num_groups,
                  std::uint64_t seed);

  std::size_t num_groups() const { return num_groups_; }

  // `count` negative destination nodes for (group, batch_idx).
  // Deterministic; different groups give decorrelated draws.
  std::vector<NodeId> sample(std::size_t group, std::size_t batch_idx,
                             std::size_t count) const;

  // Appends the same draw to `out` — allocation-free once `out` has
  // capacity, which is what the recycled mini-batch path relies on.
  void sample_into(std::size_t group, std::size_t batch_idx,
                   std::size_t count, std::vector<NodeId>& out) const;

 private:
  NodeId dst_begin_;
  std::size_t dst_count_;
  std::size_t num_groups_;
  std::uint64_t seed_;
};

}  // namespace disttgl
