#include "sampling/minibatch_pool.hpp"

#include "util/check.hpp"

namespace disttgl {

void PooledBatch::release() {
  if (batch_ == nullptr) return;
  if (pool_ != nullptr) pool_->put_back(batch_);
  batch_ = nullptr;
  pool_ = nullptr;
  owned_.reset();  // frees adopted batches
}

MiniBatchPool::MiniBatchPool(std::size_t initial_slots) {
  slots_.reserve(initial_slots);
  free_.reserve(initial_slots);
  for (std::size_t i = 0; i < initial_slots; ++i) {
    slots_.push_back(std::make_unique<MiniBatch>());
    free_.push_back(slots_.back().get());
  }
}

MiniBatchPool::~MiniBatchPool() {
  // A handle outliving its pool would return into freed memory; fail
  // loudly instead. (Trainers declare the pool before anything holding
  // handles, so destruction order enforces this.)
  DT_CHECK_EQ(outstanding_, 0u);
}

PooledBatch MiniBatchPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    slots_.push_back(std::make_unique<MiniBatch>());
    // Keep free_'s capacity ≥ the slot count so put_back never allocates.
    free_.reserve(slots_.capacity());
    free_.push_back(slots_.back().get());
  }
  MiniBatch* b = free_.back();
  free_.pop_back();
  ++outstanding_;
  return PooledBatch(b, this);
}

void MiniBatchPool::put_back(MiniBatch* b) {
  std::lock_guard<std::mutex> lock(mu_);
  DT_CHECK_GT(outstanding_, 0u);
  --outstanding_;
  free_.push_back(b);
}

std::size_t MiniBatchPool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::size_t MiniBatchPool::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

}  // namespace disttgl
