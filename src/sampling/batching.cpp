#include "sampling/batching.hpp"

namespace disttgl {

EventSplit chronological_split(const TemporalGraph& g, double train_frac,
                               double val_frac) {
  DT_CHECK_GT(train_frac, 0.0);
  DT_CHECK_GE(val_frac, 0.0);
  DT_CHECK_LE(train_frac + val_frac, 1.0);
  const std::size_t n = g.num_events();
  EventSplit s;
  s.train_begin = 0;
  s.train_end = static_cast<std::size_t>(n * train_frac);
  s.val_end = static_cast<std::size_t>(n * (train_frac + val_frac));
  s.test_end = n;
  DT_CHECK_GT(s.num_train(), 0u);
  return s;
}

std::vector<BatchRange> make_batches(std::size_t begin, std::size_t end,
                                     std::size_t batch_size) {
  DT_CHECK_GT(batch_size, 0u);
  DT_CHECK_LE(begin, end);
  std::vector<BatchRange> out;
  out.reserve((end - begin + batch_size - 1) / batch_size);
  for (std::size_t b = begin; b < end; b += batch_size) {
    out.push_back({b, std::min(b + batch_size, end)});
  }
  return out;
}

}  // namespace disttgl
