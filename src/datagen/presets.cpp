#include "datagen/presets.hpp"

#include <cmath>

namespace disttgl::datagen {

namespace {
std::size_t scaled(std::size_t base, double scale) {
  const auto v = static_cast<std::size_t>(std::llround(base * scale));
  return v > 0 ? v : 1;
}
}  // namespace

SynthSpec wikipedia_like(double scale) {
  SynthSpec s;
  s.name = "wikipedia-like";
  s.num_src = scaled(440, scale);
  s.num_dst = scaled(220, scale);
  s.num_events = scaled(12000, scale);
  s.max_time = 2.7e4 * scale;
  s.edge_feat_dim = 16;
  s.recurrence = 0.70;
  s.dynamic_weight = 0.55;
  s.activity_alpha = 0.9;
  s.drift = 0.35;
  s.seed = 101;
  return s;
}

SynthSpec reddit_like(double scale) {
  SynthSpec s;
  s.name = "reddit-like";
  s.num_src = scaled(500, scale);
  s.num_dst = scaled(160, scale);
  s.num_events = scaled(24000, scale);
  s.max_time = 2.7e4 * scale;
  s.edge_feat_dim = 16;
  s.recurrence = 0.80;
  s.dynamic_weight = 0.45;
  s.activity_alpha = 1.1;
  s.drift = 0.25;
  s.seed = 102;
  return s;
}

SynthSpec mooc_like(double scale) {
  SynthSpec s;
  s.name = "mooc-like";
  s.num_src = scaled(360, scale);
  s.num_dst = scaled(140, scale);
  s.num_events = scaled(16000, scale);
  s.max_time = 2.6e5 * scale;
  s.edge_feat_dim = 0;  // MOOC has no edge features (Table 2).
  s.recurrence = 0.70;
  s.dynamic_weight = 0.75;  // course progression: strongly dynamic
  s.preference_sharpness = 6.0;
  s.activity_alpha = 0.7;
  s.drift = 0.35;
  s.recency_window = 3;
  s.seed = 103;
  return s;
}

SynthSpec flights_like(double scale) {
  SynthSpec s;
  s.name = "flights-like";
  s.num_src = scaled(420, scale);
  s.num_dst = 0;  // unipartite airports
  s.num_events = scaled(30000, scale);
  s.max_time = 1.0e5 * scale;
  s.edge_feat_dim = 0;
  // Many unique edges: the weakest recurrence of the five presets, flat
  // activity — but stable route structure (sharp static preferences).
  s.recurrence = 0.60;
  s.dynamic_weight = 0.40;
  s.activity_alpha = 0.7;
  s.preference_sharpness = 8.0;
  s.drift = 0.15;
  s.seed = 104;
  return s;
}

SynthSpec gdelt_like(double scale) {
  SynthSpec s;
  s.name = "gdelt-like";
  s.num_src = scaled(1600, scale);
  s.num_dst = 0;  // unipartite actors
  s.num_events = scaled(48000, scale);
  s.max_time = 1.6e6 * scale;
  s.edge_feat_dim = 24;   // stands in for the 130-dim CAMEO codes
  s.node_feat_dim = 32;   // stands in for the 413-dim GDELT node features
  s.num_classes = 28;     // paper: 56-class
  s.labels_per_edge = 3;  // paper: 6-label
  // GDELT's CAMEO-code labels are dominated by static actor structure;
  // that is what makes the task tolerate very large batches (Fig 2a).
  s.label_dynamic_weight = 0.2;
  s.recurrence = 0.55;
  s.dynamic_weight = 0.50;
  s.activity_alpha = 1.0;
  s.drift = 0.20;
  s.seed = 105;
  return s;
}

std::vector<SynthSpec> all_presets(double scale) {
  return {wikipedia_like(scale), reddit_like(scale), mooc_like(scale),
          flights_like(scale), gdelt_like(scale)};
}

}  // namespace disttgl::datagen
