// Dataset presets mirroring Table 2 of the paper, scaled to single-core
// bench budgets (~20–100× smaller; exact factors in EXPERIMENTS.md).
//
// `scale` multiplies node and event counts (1.0 = the default bench
// size); use smaller values in unit tests, larger for longer studies.
#pragma once

#include <vector>

#include "datagen/spec.hpp"

namespace disttgl::datagen {

// Bipartite user→page graph. Strong recurrence (users re-edit pages),
// balanced static/dynamic signal. Paper: |V|=9.2k, |E|=157k, |de|=172.
SynthSpec wikipedia_like(double scale = 1.0);

// Bipartite user→subreddit graph. Very high recurrence, heavier events
// per node. Paper: |V|=11.0k, |E|=672k, |de|=172.
SynthSpec reddit_like(double scale = 1.0);

// Bipartite user→course-item graph; sequential course progression makes
// the signal strongly dynamic. No edge features. Paper: |V|=7.1k, |E|=412k.
SynthSpec mooc_like(double scale = 1.0);

// Unipartite airport graph; many unique edges (the paper notes Flights
// has the most unique edges, which is what limits epoch parallelism).
// Paper: |V|=13.2k, |E|=1.93M.
SynthSpec flights_like(double scale = 1.0);

// Unipartite actor knowledge graph with multi-label edge classification
// (paper: 56-class 6-label, |de|=130; here 28-class 3-label, |de|=24,
// plus raw node features standing in for the 413-dim GDELT features).
// Paper: |V|=16.7k, |E|=191M (scaled far down).
SynthSpec gdelt_like(double scale = 1.0);

// All five presets at the given scale, in paper order.
std::vector<SynthSpec> all_presets(double scale = 1.0);

}  // namespace disttgl::datagen
