// Synthetic CTDG generator specification.
//
// The generator substitutes for the paper's five real datasets (see
// DESIGN.md §2). Its generative story: each source node carries a
// *static* preference vector p_u and a *dynamic* latent state h_u that
// drifts toward the embedding of every destination it interacts with.
// The next destination is drawn from a softmax over destination
// embeddings scored against a (dynamic_weight · h_u + (1−dynamic_weight)
// · p_u) mixture, with a recency-repeat shortcut. This yields exactly the
// structure M-TGNNs exploit: a model that tracks recent interactions
// (GRU node memory) predicts better than any static model, the gap
// controlled by `dynamic_weight`, and batching-induced staleness costs
// accuracy, controlled by `recurrence`.
#pragma once

#include <cstdint>
#include <string>

namespace disttgl::datagen {

struct SynthSpec {
  std::string name = "synthetic";
  // Bipartite: num_src sources, num_dst destinations. num_dst == 0 makes
  // the graph unipartite over num_src nodes (flights/gdelt style).
  std::size_t num_src = 100;
  std::size_t num_dst = 50;
  std::size_t num_events = 10000;
  double max_time = 1e5;

  std::size_t latent_dim = 16;     // hidden embedding width of the story
  std::size_t edge_feat_dim = 0;   // 0 = no edge features
  std::size_t node_feat_dim = 0;   // 0 = no raw node features
  std::size_t num_classes = 0;     // >0 = emit multi-label edge labels
  std::size_t labels_per_edge = 0;
  // How much edge labels depend on the drifting state vs the static
  // destination embedding. Low values make the classification task
  // batch-size tolerant (the GDELT regime of Fig 2a).
  double label_dynamic_weight = 0.5;

  double activity_alpha = 0.8;     // power-law skew of source activity
  double recurrence = 0.5;         // P(repeat a recent destination)
  std::size_t recency_window = 5;  // how many recent dsts are repeatable
  double dynamic_weight = 0.5;     // dst choice: drifting state vs static pref
  double preference_sharpness = 4.0;  // softmax temperature (higher=peakier)
  double drift = 0.3;              // state step toward the chosen dst
  double feature_noise = 0.1;
  std::size_t candidate_pool = 32; // softmax candidate subset size
  std::uint64_t seed = 42;
};

}  // namespace disttgl::datagen
