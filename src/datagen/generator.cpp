#include "datagen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace disttgl::datagen {

namespace {

// Unit-norm latent embedding table.
Matrix make_embeddings(std::size_t n, std::size_t dim, Rng& rng) {
  Matrix e(n, dim);
  for (std::size_t r = 0; r < n; ++r) {
    double sq = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      e(r, c) = static_cast<float>(rng.normal());
      sq += static_cast<double>(e(r, c)) * e(r, c);
    }
    const float inv = sq > 0 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
    for (std::size_t c = 0; c < dim; ++c) e(r, c) *= inv;
  }
  return e;
}

float dot(std::span<const float> a, std::span<const float> b) {
  DT_CHECK_EQ(a.size(), b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

TemporalGraph generate(const SynthSpec& spec) {
  DT_CHECK_GT(spec.num_src, 0u);
  DT_CHECK_GT(spec.num_events, 0u);
  DT_CHECK_GT(spec.latent_dim, 0u);

  Rng rng(spec.seed);
  const bool bipartite = spec.num_dst > 0;
  const std::size_t num_nodes =
      bipartite ? spec.num_src + spec.num_dst : spec.num_src;
  const std::size_t dst_begin = bipartite ? spec.num_src : 0;
  const std::size_t dst_count = bipartite ? spec.num_dst : spec.num_src;
  const std::size_t L = spec.latent_dim;

  // Latent story state.
  Matrix node_emb = make_embeddings(num_nodes, L, rng);   // z_v
  Matrix preference = make_embeddings(num_nodes, L, rng); // p_u (static)
  Matrix state(num_nodes, L);                             // h_u (dynamic)
  for (std::size_t r = 0; r < num_nodes; ++r)
    state.copy_row_from(r, preference.row(r));

  // Class prototypes for multi-label tasks.
  Matrix class_proto;
  if (spec.num_classes > 0)
    class_proto = make_embeddings(spec.num_classes, L, rng);

  // Fixed random projections for feature emission.
  Matrix feat_proj;
  if (spec.edge_feat_dim > 0)
    feat_proj = make_embeddings(spec.edge_feat_dim, 2 * L, rng);
  Matrix node_feat_proj;
  if (spec.node_feat_dim > 0)
    node_feat_proj = make_embeddings(spec.node_feat_dim, L, rng);

  std::vector<std::deque<NodeId>> recent(num_nodes);

  std::vector<TemporalEdge> events;
  events.reserve(spec.num_events);
  Matrix edge_feat(spec.edge_feat_dim > 0 ? spec.num_events : 0,
                   spec.edge_feat_dim);
  Matrix edge_labels(spec.num_classes > 0 ? spec.num_events : 0,
                     spec.num_classes);

  const double rate = static_cast<double>(spec.num_events) / spec.max_time;
  double t = 0.0;
  std::vector<float> scores(spec.candidate_pool);
  std::vector<NodeId> candidates(spec.candidate_pool);
  std::vector<float> mixed(L);

  for (std::size_t i = 0; i < spec.num_events; ++i) {
    t += rng.exponential(rate);
    const NodeId u = static_cast<NodeId>(rng.powerlaw_int(spec.num_src, spec.activity_alpha));

    // Interest mixture for u: dynamic state vs static preference.
    const float w = static_cast<float>(spec.dynamic_weight);
    for (std::size_t c = 0; c < L; ++c)
      mixed[c] = w * state(u, c) + (1.0f - w) * preference(u, c);

    NodeId v;
    if (!recent[u].empty() && rng.bernoulli(spec.recurrence)) {
      v = recent[u][rng.uniform_int(recent[u].size())];
    } else {
      // Score a uniform candidate pool against the interest mixture.
      for (std::size_t c = 0; c < spec.candidate_pool; ++c) {
        NodeId cand;
        do {
          cand = static_cast<NodeId>(dst_begin + rng.uniform_int(dst_count));
        } while (!bipartite && cand == u);
        candidates[c] = cand;
        scores[c] = static_cast<float>(spec.preference_sharpness) *
                    dot(mixed, node_emb.row(cand));
      }
      // Softmax sample.
      float mx = *std::max_element(scores.begin(), scores.end());
      std::vector<float> probs(scores.size());
      for (std::size_t c = 0; c < scores.size(); ++c)
        probs[c] = std::exp(scores[c] - mx);
      v = candidates[rng.categorical(probs)];
    }

    // Record the event.
    TemporalEdge e;
    e.src = u;
    e.dst = v;
    e.ts = static_cast<float>(t);
    events.push_back(e);

    // Emit edge features from the (dst embedding, src state) pair.
    if (spec.edge_feat_dim > 0) {
      for (std::size_t f = 0; f < spec.edge_feat_dim; ++f) {
        float acc = 0.0f;
        const float* proj = feat_proj.row_ptr(f);
        for (std::size_t c = 0; c < L; ++c)
          acc += proj[c] * node_emb(v, c) + proj[L + c] * state(u, c);
        edge_feat(i, f) =
            acc + static_cast<float>(rng.normal(0.0, spec.feature_noise));
      }
    }

    // Emit multi-label targets: top-k classes of the (z_v, h_u) mixture.
    if (spec.num_classes > 0) {
      const float lw = static_cast<float>(spec.label_dynamic_weight);
      std::vector<std::pair<float, std::size_t>> cls(spec.num_classes);
      for (std::size_t j = 0; j < spec.num_classes; ++j) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < L; ++c)
          acc += class_proto(j, c) *
                 ((1.0f - lw) * node_emb(v, c) + lw * state(u, c));
        cls[j] = {acc, j};
      }
      const std::size_t k = std::min(spec.labels_per_edge, spec.num_classes);
      std::partial_sort(cls.begin(), cls.begin() + k, cls.end(),
                        [](auto& a, auto& b) { return a.first > b.first; });
      for (std::size_t j = 0; j < k; ++j) edge_labels(i, cls[j].second) = 1.0f;
    }

    // Drift: the source's dynamic state moves toward the destination
    // embedding (and, in unipartite graphs, vice versa).
    const float d = static_cast<float>(spec.drift);
    for (std::size_t c = 0; c < L; ++c)
      state(u, c) = (1.0f - d) * state(u, c) + d * node_emb(v, c);
    if (!bipartite) {
      for (std::size_t c = 0; c < L; ++c)
        state(v, c) = (1.0f - d) * state(v, c) + d * node_emb(u, c);
    }

    recent[u].push_back(v);
    if (recent[u].size() > spec.recency_window) recent[u].pop_front();
  }

  // Rescale time so the final timestamp hits max_time exactly — keeps
  // presets comparable to Table 2's max(t).
  const float scale = static_cast<float>(spec.max_time / t);
  for (TemporalEdge& e : events) e.ts *= scale;

  TemporalGraph g = TemporalGraph::from_events(spec.name, num_nodes,
                                               std::move(events), dst_begin);
  if (spec.edge_feat_dim > 0) g.set_edge_features(std::move(edge_feat));
  if (spec.num_classes > 0) g.set_edge_labels(std::move(edge_labels));
  if (spec.node_feat_dim > 0) {
    Matrix nf(num_nodes, spec.node_feat_dim);
    for (std::size_t v = 0; v < num_nodes; ++v) {
      for (std::size_t f = 0; f < spec.node_feat_dim; ++f) {
        nf(v, f) = dot(node_feat_proj.row(f), node_emb.row(v)) +
                   static_cast<float>(rng.normal(0.0, spec.feature_noise));
      }
    }
    g.set_node_features(std::move(nf));
  }
  return g;
}

}  // namespace disttgl::datagen
