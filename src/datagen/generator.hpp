// Synthetic temporal-graph generation (see spec.hpp for the model).
#pragma once

#include "datagen/spec.hpp"
#include "graph/temporal_graph.hpp"

namespace disttgl::datagen {

// Generates a TemporalGraph (events, features, labels) from the spec.
// Deterministic in spec.seed.
TemporalGraph generate(const SynthSpec& spec);

}  // namespace disttgl::datagen
